"""Declarative experiment specs: what to sweep, loaded from TOML/JSON.

A spec names an experiment and declares a full factorial sweep:
``configs x workloads x seeds``. Each *config* is a named bundle of
harness knobs; ``[defaults]`` supplies values shared by every config.
The same schema loads from ``.toml`` (via :mod:`tomllib`) or ``.json``.

Example (TOML)::

    name = "ablation-refresh-period"
    title = "Refresh period vs phase-boundary resolution"
    seeds = [12]
    workloads = ["revolve-original/20"]

    [defaults]
    harness = "tool"
    span = 0            # run until the job exits
    detect_transitions = true

    [[configs]]
    name = "delay-1"
    delay = 1.0

    [[configs]]
    name = "delay-5"
    delay = 5.0

Every key is validated here — unknown keys, wrong types and
out-of-range values raise :class:`~repro.errors.ExperimentError`
(exit status 2 from the CLI) before any cell runs.
"""

from __future__ import annotations

import json
import math
import re
import tomllib
from dataclasses import dataclass, fields
from pathlib import Path

from repro.errors import ExperimentError
from repro.sim.arch import get_arch

from repro.experiments import library

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9._-]*$")

#: The three execution harnesses (see :mod:`repro.experiments.executor`).
HARNESSES = ("counters", "tool", "grid")


@dataclass(frozen=True)
class CellConfig:
    """One fully resolved config row (defaults already merged in).

    Attributes:
        name: config label, unique within the spec.
        harness: ``"counters"`` (SimBackend + Counter loop), ``"tool"``
            (the full tiptop app + Recorder) or ``"grid"`` (batch
            submission through :class:`~repro.sim.grid.Grid`).
        arch: architecture model name (``get_arch``).
        tick: scheduler tick in simulated seconds.
        sockets / cores_per_socket: machine shape (counters/tool) or
            per-node shape (grid).
        span: simulated seconds to run. ``0`` means "until the first
            process exits" (tool harness only).
        warmup: seconds advanced before the measured window.
        delay: sampling interval in seconds (counters/tool).
        copies: processes spawned (or grid jobs submitted).
        nthreads: threads per process.
        per_thread: tool harness counts threads separately (inherit off).
        pin: pin copy *i* to PU *i* (counters/tool).
        duty_cycle: runnable fraction per process.
        sample_period: when set, adds an interrupt-sampled instructions
            counter next to the counted one (the §2.5 ablation).
        events: ``None`` for the standard six-event set, an integer *N*
            for the first N supported events (multiplexing sweeps), or an
            explicit list of event names.
        noise: when set, overrides every phase's noise level.
        screen: tool-harness screen name.
        detect_transitions: tool harness reports the first detected
            IPC transition point.
        engine / workers / transport: grid execution engine selection.
        nodes: grid node count.
        queue: grid submission queue.
    """

    name: str
    harness: str = "counters"
    arch: str = "nehalem"
    tick: float = 0.5
    sockets: int = 1
    cores_per_socket: int = 4
    span: float = 30.0
    warmup: float = 0.0
    delay: float = 5.0
    copies: int = 1
    nthreads: int = 1
    per_thread: bool = False
    pin: bool = False
    duty_cycle: float = 1.0
    sample_period: int | None = None
    events: int | tuple[str, ...] | None = None
    noise: float | None = None
    screen: str = "default"
    detect_transitions: bool = False
    engine: str | None = None
    workers: int = 1
    transport: str | None = None
    nodes: int = 2
    queue: str = "day-8g-asap"


@dataclass(frozen=True)
class ExperimentSpec:
    """One validated experiment: the sweep axes and their settings."""

    name: str
    title: str
    seeds: tuple[int, ...]
    workloads: tuple[str, ...]
    configs: tuple[CellConfig, ...]
    source: str = ""  # where this spec was loaded from, for reports

    @property
    def n_cells(self) -> int:
        return len(self.configs) * len(self.workloads) * len(self.seeds)

    def to_dict(self) -> dict:
        """A JSON-clean rendering embedded in artifacts."""
        return {
            "name": self.name,
            "title": self.title,
            "seeds": list(self.seeds),
            "workloads": list(self.workloads),
            "configs": [
                {
                    f.name: (
                        list(v) if isinstance(v := getattr(c, f.name), tuple) else v
                    )
                    for f in fields(CellConfig)
                }
                for c in self.configs
            ],
        }


_FLOAT_KEYS = {"tick", "span", "warmup", "delay", "duty_cycle", "noise"}
_INT_KEYS = {"sockets", "cores_per_socket", "copies", "nthreads",
             "sample_period", "workers", "nodes"}
_BOOL_KEYS = {"per_thread", "pin", "detect_transitions"}
_STR_KEYS = {"name", "harness", "arch", "screen", "queue"}
_OPT_STR_KEYS = {"engine", "transport"}
_CONFIG_KEYS = (
    _FLOAT_KEYS | _INT_KEYS | _BOOL_KEYS | _STR_KEYS | _OPT_STR_KEYS | {"events"}
)
_OPTIONAL = {"sample_period", "noise", "events", "engine", "transport"}


def _fail(msg: str) -> None:
    raise ExperimentError(msg)


def _coerce(key: str, value):
    if key in _OPTIONAL and value is None:
        return None
    if key in _BOOL_KEYS:
        if not isinstance(value, bool):
            _fail(f"config key {key!r} must be a boolean, got {value!r}")
        return value
    if key in _INT_KEYS:
        if isinstance(value, bool) or not isinstance(value, int):
            _fail(f"config key {key!r} must be an integer, got {value!r}")
        return value
    if key in _FLOAT_KEYS:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            _fail(f"config key {key!r} must be a number, got {value!r}")
        value = float(value)
        if math.isnan(value) or math.isinf(value):
            _fail(f"config key {key!r} must be finite, got {value!r}")
        return value
    if key in _STR_KEYS or key in _OPT_STR_KEYS:
        if not isinstance(value, str):
            _fail(f"config key {key!r} must be a string, got {value!r}")
        return value
    if key == "events":
        if isinstance(value, bool):
            _fail(f"config key 'events' must be an int or list, got {value!r}")
        if isinstance(value, int):
            return value
        if isinstance(value, list) and all(isinstance(v, str) for v in value):
            return tuple(value)
        _fail(f"config key 'events' must be an int or a list of names, got {value!r}")
    raise AssertionError(f"unhandled key {key}")  # pragma: no cover


def _validate_config(cfg: CellConfig) -> None:
    where = f"config {cfg.name!r}"
    if not _NAME_RE.match(cfg.name):
        _fail(f"config name {cfg.name!r} must match {_NAME_RE.pattern}")
    if cfg.harness not in HARNESSES:
        _fail(f"{where}: harness must be one of {HARNESSES}, got {cfg.harness!r}")
    try:
        get_arch(cfg.arch)
    except Exception as exc:
        _fail(f"{where}: unknown arch {cfg.arch!r} ({exc})")
    if cfg.tick <= 0:
        _fail(f"{where}: tick must be positive")
    if cfg.span < 0:
        _fail(f"{where}: span must be >= 0")
    if cfg.span == 0 and cfg.harness != "tool":
        _fail(f"{where}: span=0 (run to completion) only works with the tool harness")
    if cfg.warmup < 0:
        _fail(f"{where}: warmup must be >= 0")
    if cfg.delay <= 0:
        _fail(f"{where}: delay must be positive")
    if cfg.sockets < 1 or cfg.cores_per_socket < 1:
        _fail(f"{where}: machine shape must be at least 1x1")
    if cfg.copies < 1:
        _fail(f"{where}: copies must be >= 1")
    if cfg.nthreads < 1:
        _fail(f"{where}: nthreads must be >= 1")
    if not 0 < cfg.duty_cycle <= 1:
        _fail(f"{where}: duty_cycle must be in (0, 1]")
    if cfg.sample_period is not None and cfg.sample_period < 1:
        _fail(f"{where}: sample_period must be >= 1")
    if isinstance(cfg.events, int) and cfg.events < 1:
        _fail(f"{where}: events count must be >= 1")
    if cfg.noise is not None and not 0 <= cfg.noise < 1:
        _fail(f"{where}: noise must be in [0, 1)")
    if cfg.workers < 1:
        _fail(f"{where}: workers must be >= 1")
    if cfg.nodes < 1:
        _fail(f"{where}: nodes must be >= 1")


def from_dict(data: dict, *, source: str = "") -> ExperimentSpec:
    """Build and validate a spec from already-parsed data.

    Raises:
        ExperimentError: any schema violation.
    """
    if not isinstance(data, dict):
        _fail(f"spec must be a table/object, got {type(data).__name__}")
    known_top = {"name", "title", "seeds", "workloads", "defaults", "configs"}
    unknown = set(data) - known_top
    if unknown:
        _fail(f"unknown spec key(s) {sorted(unknown)}; known: {sorted(known_top)}")

    name = data.get("name")
    if not isinstance(name, str) or not _NAME_RE.match(name):
        _fail(f"spec needs a name matching {_NAME_RE.pattern}, got {name!r}")
    title = data.get("title", "")
    if not isinstance(title, str):
        _fail(f"title must be a string, got {title!r}")

    seeds = data.get("seeds")
    if (
        not isinstance(seeds, list)
        or not seeds
        or not all(isinstance(s, int) and not isinstance(s, bool) for s in seeds)
    ):
        _fail(f"seeds must be a non-empty list of integers, got {seeds!r}")
    if len(set(seeds)) != len(seeds):
        _fail("seeds must be unique")

    workloads = data.get("workloads")
    if (
        not isinstance(workloads, list)
        or not workloads
        or not all(isinstance(w, str) for w in workloads)
    ):
        _fail(f"workloads must be a non-empty list of references, got {workloads!r}")
    for ref in workloads:
        library.check(ref)

    defaults = data.get("defaults", {})
    if not isinstance(defaults, dict):
        _fail(f"defaults must be a table, got {defaults!r}")
    if "name" in defaults:
        _fail("defaults may not set 'name'")
    raw_configs = data.get("configs")
    if not isinstance(raw_configs, list) or not raw_configs:
        _fail("spec needs a non-empty [[configs]] list")

    configs = []
    for i, raw in enumerate(raw_configs):
        if not isinstance(raw, dict):
            _fail(f"configs[{i}] must be a table, got {raw!r}")
        merged = {**defaults, **raw}
        unknown = set(merged) - _CONFIG_KEYS
        if unknown:
            _fail(
                f"configs[{i}]: unknown key(s) {sorted(unknown)}; "
                f"known: {sorted(_CONFIG_KEYS)}"
            )
        if "name" not in merged:
            _fail(f"configs[{i}] needs a name")
        cfg = CellConfig(**{k: _coerce(k, v) for k, v in merged.items()})
        _validate_config(cfg)
        configs.append(cfg)
    config_names = [c.name for c in configs]
    if len(set(config_names)) != len(config_names):
        _fail(f"config names must be unique, got {config_names}")

    return ExperimentSpec(
        name=name,
        title=title,
        seeds=tuple(seeds),
        workloads=tuple(workloads),
        configs=tuple(configs),
        source=source,
    )


def load(path: Path | str) -> ExperimentSpec:
    """Load a spec file (``.toml`` or ``.json``).

    Raises:
        ExperimentError: unreadable file, parse error, or any schema
            violation.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        _fail(f"cannot read spec {path}: {exc}")
    if path.suffix == ".toml":
        try:
            data = tomllib.loads(raw.decode("utf-8"))
        except (tomllib.TOMLDecodeError, UnicodeDecodeError) as exc:
            _fail(f"spec {path} is not valid TOML: {exc}")
    elif path.suffix == ".json":
        try:
            data = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            _fail(f"spec {path} is not valid JSON: {exc}")
    else:
        _fail(f"spec {path} must be a .toml or .json file")
    return from_dict(data, source=path.name)
