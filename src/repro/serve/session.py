"""Per-subscriber state: subscriptions, bounded queues, resume.

The daemon's fanout invariant is that sampling stays O(1) in client
count; everything per-client lives here and is deliberately cheap:

* A :class:`Subscription` narrows what a client sees — task filters
  (pids/comms), column selection, and extra derived-metric expressions
  evaluated *server-side* over the columnar deltas (one vectorised pass,
  shared by every client with the same subscription).
* :class:`ClientSession` owns one bounded send queue. A slow consumer
  never blocks the sampler and never grows memory: when the queue is
  full the *oldest* pending frame is dropped (a telemetry viewer wants
  the freshest data, not a complete history), and the drop is counted.
  The accounting identity ``published == delivered + dropped + lag``
  holds at every instant and is what the backpressure property tests
  pin down.
* :class:`FanoutHub` multiplexes one published frame to every session,
  encoding once per *distinct* subscription (not per client), and keeps
  a bounded retention ring so a reconnecting client can resume from its
  last-seen sequence number.
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, replace

import numpy as np

from repro.core.expr import Expression, canonical_name
from repro.core.frame import INTRINSIC_KINDS, SnapshotFrame
from repro.errors import ExprError, SessionError
from repro.serve.protocol import encode_frame

#: Column kinds that survive any column filter (task identity is always
#: delivered; filters act on counter/metric/label payload columns).
_INTRINSIC = frozenset(INTRINSIC_KINDS.values()) | {"health"}


@dataclass(frozen=True)
class Subscription:
    """What one client asked to receive.

    Attributes:
        pids: keep only these pids (None = all tasks).
        comms: keep only these command names (None = all).
        columns: keep only these delta/metric/label columns (None =
            all; intrinsic identity columns always pass).
        exprs: extra derived columns as ``(header, expression)`` pairs,
            evaluated server-side over the (row-filtered) delta columns.
    """

    pids: frozenset[int] | None = None
    comms: frozenset[str] | None = None
    columns: frozenset[str] | None = None
    exprs: tuple[tuple[str, str], ...] = ()

    def key(self) -> tuple:
        """Canonical value for the encode cache: equal keys mean every
        frame view (and hence every encoded payload) is identical."""
        return (
            tuple(sorted(self.pids)) if self.pids is not None else None,
            tuple(sorted(self.comms)) if self.comms is not None else None,
            tuple(sorted(self.columns)) if self.columns is not None else None,
            self.exprs,
        )

    @property
    def is_total(self) -> bool:
        """True when the subscription filters nothing and derives
        nothing — the client's stream is the sampler's stream."""
        return (
            self.pids is None
            and self.comms is None
            and self.columns is None
            and not self.exprs
        )

    # -- JSON (the SUBSCRIBE control body) ----------------------------------
    def to_dict(self) -> dict:
        return {
            "pids": sorted(self.pids) if self.pids is not None else None,
            "comms": sorted(self.comms) if self.comms is not None else None,
            "columns": (
                sorted(self.columns) if self.columns is not None else None
            ),
            "exprs": [list(pair) for pair in self.exprs],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Subscription":
        try:
            pids = data.get("pids")
            comms = data.get("comms")
            columns = data.get("columns")
            exprs = data.get("exprs") or []
            return cls(
                pids=(
                    frozenset(int(p) for p in pids)
                    if pids is not None
                    else None
                ),
                comms=(
                    frozenset(str(c) for c in comms)
                    if comms is not None
                    else None
                ),
                columns=(
                    frozenset(str(c) for c in columns)
                    if columns is not None
                    else None
                ),
                exprs=tuple(
                    (str(header), str(text)) for header, text in exprs
                ),
            )
        except (TypeError, ValueError) as exc:
            raise SessionError(f"malformed subscription: {exc}") from exc

    def compile_exprs(self) -> tuple[tuple[str, Expression], ...]:
        """Parse the derived-column expressions (raises
        :class:`~repro.errors.SessionError` on a syntax error)."""
        compiled = []
        for header, text in self.exprs:
            try:
                compiled.append((header, Expression(text)))
            except ExprError as exc:
                raise SessionError(
                    f"bad subscription expr {header!r}: {exc}"
                ) from exc
        return tuple(compiled)


def subscription_view(
    frame: SnapshotFrame,
    sub: Subscription,
    compiled: tuple[tuple[str, Expression], ...] | None = None,
) -> SnapshotFrame:
    """The frame exactly as a subscriber sees it.

    Row filters first, then server-side derived columns (evaluated over
    the filtered rows' full delta set, so an expr may reference a column
    the client did not subscribe to raw), then the column filter. A
    total subscription returns the frame object unchanged — the common
    thousands-of-dashboards case costs nothing per client.
    """
    if sub.is_total:
        return frame
    view = frame
    if sub.pids is not None or sub.comms is not None:
        mask = np.ones(len(view), dtype=bool)
        if sub.pids is not None:
            mask &= np.isin(view.pids, np.array(sorted(sub.pids), dtype=np.int64))
        if sub.comms is not None:
            mask &= np.fromiter(
                (c in sub.comms for c in view.comms),
                dtype=bool,
                count=len(view),
            )
        view = view.select(mask)
    if sub.exprs:
        if compiled is None:
            compiled = sub.compile_exprs()
        env: dict[str, np.ndarray | float] = {
            canonical_name(name): col for name, col in view.deltas.items()
        }
        env["delta_t"] = view.interval if view.interval > 0 else math.nan
        env["cpu_pct"] = view.cpu_pct
        metrics = dict(view.metrics)
        layout = list(view.columns)
        for header, expression in compiled:
            try:
                column = (
                    expression.evaluate_column(env, len(view))
                    if len(view)
                    else np.empty(0)
                )
            except ExprError:
                # An identifier this screen does not count: the column
                # exists (the client asked for it) but reads as NaN.
                column = np.full(len(view), math.nan)
            metrics[header] = column
            layout.append((header, "expr"))
        view = replace(view, metrics=metrics, columns=tuple(layout))
    if sub.columns is not None:
        keep = set(sub.columns) | {header for header, _ in sub.exprs}
        view = replace(
            view,
            deltas={k: v for k, v in view.deltas.items() if k in keep},
            metrics={k: v for k, v in view.metrics.items() if k in keep},
            labels={k: v for k, v in view.labels.items() if k in keep},
            columns=tuple(
                (header, kind)
                for header, kind in view.columns
                if kind in _INTRINSIC or header in keep
            ),
        )
    return view


class ClientSession:
    """One subscriber's bounded send queue and exact accounting.

    Attributes:
        client_id: stable identity (drives resume across reconnects).
        subscription: what this client receives.
        published: frames offered to this session (post-subscription).
        delivered: frames the consumer actually popped.
        dropped: frames evicted by backpressure (drop-oldest).
    """

    def __init__(
        self,
        client_id: str,
        subscription: Subscription,
        *,
        queue_limit: int = 64,
        on_enqueue: Callable[[], None] | None = None,
    ) -> None:
        if queue_limit < 1:
            raise SessionError(f"queue_limit must be >= 1, got {queue_limit}")
        self.client_id = client_id
        self.subscription = subscription
        self.compiled_exprs = subscription.compile_exprs()
        self.queue_limit = queue_limit
        self.published = 0
        self.delivered = 0
        self.dropped = 0
        self.last_offered_seq = -1
        self.last_popped_seq = -1
        self.closed = False
        self._queue: deque[tuple[int, bytes]] = deque()
        self._on_enqueue = on_enqueue

    @property
    def lag(self) -> int:
        """Frames sitting in the queue right now."""
        return len(self._queue)

    def offer(self, seq: int, payload: bytes) -> bool:
        """Enqueue one encoded frame; returns True if a drop happened.

        Sequence numbers must be strictly increasing per session —
        that's the wire contract the client's monotonicity check and the
        resume protocol both build on.
        """
        if seq <= self.last_offered_seq:
            raise SessionError(
                f"client {self.client_id}: publish seq {seq} after "
                f"{self.last_offered_seq} (must be monotonic)"
            )
        self.last_offered_seq = seq
        self.published += 1
        dropped = False
        if len(self._queue) >= self.queue_limit:
            self._queue.popleft()
            self.dropped += 1
            dropped = True
        self._queue.append((seq, payload))
        if self._on_enqueue is not None:
            self._on_enqueue()
        return dropped

    def pop(self) -> tuple[int, bytes] | None:
        """Dequeue the oldest pending frame (None when idle)."""
        if not self._queue:
            return None
        seq, payload = self._queue.popleft()
        self.delivered += 1
        self.last_popped_seq = seq
        return seq, payload

    def stats(self) -> dict:
        """The accounting snapshot (surfaced by ``--profile`` and BYE)."""
        return {
            "client": self.client_id,
            "published": self.published,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "lag": self.lag,
            "last_seq": self.last_popped_seq,
        }


class FanoutHub:
    """Publishes each frame once; every session sees its own view.

    Args:
        queue_limit: per-session send-queue bound (drop-oldest beyond).
        retention: how many (seq, frame) pairs to keep for resume.
        compress: forwarded to the codec (None = auto by width).
    """

    def __init__(
        self,
        *,
        queue_limit: int = 64,
        retention: int = 256,
        compress: bool | None = None,
    ) -> None:
        self.queue_limit = queue_limit
        self.compress = compress
        self.next_seq = 0
        self.sessions: dict[str, ClientSession] = {}
        self._retained: deque[tuple[int, SnapshotFrame]] = deque(
            maxlen=max(1, retention)
        )
        #: encode-cache hit/miss tallies (profile observability).
        self.encode_hits = 0
        self.encode_misses = 0

    # -- membership ---------------------------------------------------------
    def add_session(
        self,
        client_id: str,
        subscription: Subscription | None = None,
        *,
        resume_from: int | None = None,
        on_enqueue: Callable[[], None] | None = None,
        queue_limit: int | None = None,
    ) -> ClientSession:
        """Register a subscriber; optionally replay retained frames.

        ``resume_from`` is the client's last-seen sequence number: every
        retained frame with a strictly greater sequence is re-offered in
        order, so a reconnect after a drop (or a network blip) picks up
        at exactly the first frame the client has not seen — provided
        retention still holds it. Frames that aged out of retention are
        lost, which the client observes as a sequence gap.
        """
        if client_id in self.sessions:
            raise SessionError(f"client id {client_id!r} already subscribed")
        session = ClientSession(
            client_id,
            subscription or Subscription(),
            queue_limit=queue_limit or self.queue_limit,
            on_enqueue=on_enqueue,
        )
        self.sessions[client_id] = session
        if resume_from is not None:
            for seq, frame in self._retained:
                if seq > resume_from:
                    view = subscription_view(
                        frame, session.subscription, session.compiled_exprs
                    )
                    session.offer(
                        seq, encode_frame(view, seq, compress=self.compress)
                    )
        return session

    def remove_session(self, client_id: str) -> None:
        session = self.sessions.pop(client_id, None)
        if session is not None:
            session.closed = True

    # -- publishing ---------------------------------------------------------
    def publish(self, frame: SnapshotFrame) -> int:
        """Fan one frame out to every session; returns its sequence.

        Encoding happens once per distinct subscription key: a thousand
        dashboards with the same (usually total) subscription cost one
        view + one encode, then N queue appends.
        """
        seq = self.next_seq
        self.next_seq += 1
        self._retained.append((seq, frame))
        cache: dict[tuple, bytes] = {}
        for session in self.sessions.values():
            key = session.subscription.key()
            payload = cache.get(key)
            if payload is None:
                view = subscription_view(
                    frame, session.subscription, session.compiled_exprs
                )
                payload = encode_frame(view, seq, compress=self.compress)
                cache[key] = payload
                self.encode_misses += 1
            else:
                self.encode_hits += 1
            session.offer(seq, payload)
        return seq

    def retained_range(self) -> tuple[int, int] | None:
        """(oldest, newest) retained sequence numbers (None when empty)."""
        if not self._retained:
            return None
        return self._retained[0][0], self._retained[-1][0]

    def stats(self) -> dict:
        """Hub-level accounting over all sessions."""
        sessions = [s.stats() for s in self.sessions.values()]
        return {
            "published_seqs": self.next_seq,
            "clients": len(sessions),
            "dropped_total": sum(s["dropped"] for s in sessions),
            "lag_max": max((s["lag"] for s in sessions), default=0),
            "encode_hits": self.encode_hits,
            "encode_misses": self.encode_misses,
            "sessions": sessions,
        }
