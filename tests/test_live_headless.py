"""Live-mode paths driven headlessly: sort cycling, width clipping
mid-refresh, and dead-task row expiry — the screen/interactive behaviour
a terminal user sees, exercised without one.
"""

import math

import pytest

from repro import Options, SimHost
from repro.core.interactive import (
    MIN_WIDTH,
    InteractiveSession,
    help_frame,
)
from repro.core.screen import get_screen
from repro.errors import ConfigError


class Keys:
    """A scripted input source: one list of commands per refresh."""

    def __init__(self, *per_refresh):
        self.queues = list(per_refresh)

    def __call__(self):
        return self.queues.pop(0) if self.queues else []


@pytest.fixture
def host(coarse_machine, endless_workload):
    coarse_machine.spawn("alpha", endless_workload)
    coarse_machine.spawn("beta", endless_workload)
    return SimHost(coarse_machine)


def _session(host, keys, **opt):
    return InteractiveSession(
        host, Options(delay=2.0, **opt), input_source=keys
    )


class TestSortCycling:
    def test_o_cycles_through_sortable_columns(self, host):
        session = _session(host, Keys())
        headers = session._sort_keys()
        assert headers[0] == "PID" and "%CPU" in headers
        seen = [session.options.sort_by]
        for _ in headers:
            session.handle("o")
            seen.append(session.options.sort_by)
        # Starts at %CPU (the default), walks every sortable column, and
        # the full cycle returns to the starting key.
        assert seen[-1] == seen[0] == "%CPU"
        assert set(seen) == set(headers)
        session.close()

    def test_o_takes_effect_without_reattach(self, host):
        """Sorting is applied at sample time from the live options; the
        counters must not be detached for it."""
        session = _session(host, Keys(["o"], ["q"]))
        sampler_before = session._sampler
        session.run()
        assert session._sampler is sampler_before
        # One press from the default %CPU lands on the next sortable
        # column of the default screen.
        assert session._sampler.options.sort_by == "Mcycle"
        assert session.options.sort_by == "Mcycle"

    def test_o_reorders_rows_by_pid(self, host):
        # Five presses from %CPU wrap the six-column cycle around to PID.
        session = _session(host, Keys([], ["o"] * 5, ["q"]))
        frames = session.run()

        def row_order(frame):
            return [
                line.split()[-1]
                for line in frame.splitlines()[2:]
                if line.strip()
            ]

        # PID sort is descending, so the later spawn ("beta") leads.
        assert row_order(frames[-1])[0] == "beta"

    def test_o_with_unsortable_current_key_restarts_cycle(self, host):
        session = _session(host, Keys(), sort_by="no-such-column")
        session.handle("o")
        assert session.options.sort_by == session._sort_keys()[0]
        session.close()


class TestWidthClipping:
    def test_w_clips_frames_mid_run(self, host):
        wide = _session(host, Keys(["q"]))
        full = None
        session = _session(host, Keys([], ["w 20"], ["q"]))
        frames = session.run()
        full = frames[0]
        clipped = frames[-1]
        assert any(len(line) > 20 for line in full.splitlines())
        assert all(len(line) <= 20 for line in clipped.splitlines())
        wide.close()

    def test_w_without_argument_resets(self, host):
        session = _session(host, Keys(["w 20"], ["w"], ["q"]))
        frames = session.run()
        assert any(len(line) > 20 for line in frames[-1].splitlines())

    def test_w_rejects_narrow_and_garbage(self, host):
        session = _session(host, Keys())
        with pytest.raises(ConfigError, match="width"):
            session.handle(f"w {MIN_WIDTH - 1}")
        with pytest.raises(ConfigError, match="width"):
            session.handle("w wide")
        session.close()

    def test_resize_mid_refresh_applies_to_next_frame(self, host):
        """A resize typed between refreshes affects the very next painted
        frame, like a SIGWINCH handled at the top of the loop."""
        session = _session(host, Keys([], ["w 15"], [], ["q"]))
        frames = session.run()
        assert any(len(line) > 15 for line in frames[0].splitlines())
        assert all(len(line) <= 15 for line in frames[1].splitlines())
        assert all(len(line) <= 15 for line in frames[2].splitlines())

    def test_help_mentions_new_commands(self):
        text = help_frame()
        assert "o " in text and "w [N]" in text


class TestDeadTaskExpiry:
    @pytest.fixture
    def dying_host(self, coarse_machine, endless_workload, basic_phase):
        from repro.sim.workload import Workload

        # ~2 simulated seconds of work: alive for the first refresh,
        # gone before the second.
        short = Workload(
            "short", (basic_phase.with_budget(3.07e9 * 2 * 0.5),)
        )
        coarse_machine.spawn("steady", endless_workload)
        coarse_machine.spawn("doomed", short)
        return SimHost(coarse_machine)

    def test_dead_task_contributes_final_frame_then_expires(
        self, dying_host
    ):
        session = _session(dying_host, Keys([], [], [], ["q"]))
        frames = session.run()
        # Final deltas are reported in the frame covering the death...
        assert "doomed" in frames[0]
        # ...and the row disappears once the process list drops the task.
        assert "doomed" not in frames[-1]
        assert "steady" in frames[-1]

    def test_no_counters_leak_after_expiry(self, dying_host):
        session = _session(dying_host, Keys([], [], ["q"]))
        session.run()
        assert dying_host.machine.counters.open_count() == 0


class TestScreenLivePaths:
    def test_screen_switch_mid_run_renders_new_columns(self, host):
        session = _session(host, Keys([], ["s cache"], ["q"]))
        frames = session.run()
        assert "L2MIS" not in frames[0]
        assert "L2MIS" in frames[-1]

    def test_every_builtin_screen_renders_headlessly(self, host):
        from repro.core.screen import builtin_screens

        for screen in builtin_screens():
            session = InteractiveSession(
                host,
                Options(delay=2.0),
                get_screen(screen.name),
                input_source=Keys([], ["q"]),
            )
            frames = session.run()
            assert frames and screen.columns[0].header in frames[0]

    def test_width_clip_survives_screen_switch(self, host):
        session = _session(host, Keys(["w 12"], ["s cache"], ["q"]))
        frames = session.run()
        assert all(len(line) <= 12 for line in frames[-1].splitlines())


def test_sort_by_option_default():
    assert Options().sort_by == "%CPU"


def test_wide_duration_math_stays_exact():
    # Guard for the fixture arithmetic above: two seconds of work at the
    # calibrated rate is finite and positive.
    assert math.isfinite(3.07e9 * 2 * 0.5)
