"""Figure 3: IPC of the R evolutionary algorithm.

Paper panels:
(a) original on Nehalem — IPC ~1.0 (noisy) for 953 five-second samples,
    then a collapse to ~0.03 with brief pulses; 3327 samples total.
(b) clipped variant on Nehalem — IPC stays ~1.0; the run completes in
    ~2 hours (2.3x overall speedup, 4.8x on the faulty part).
(c) zoom at the transition — the IPC drop coincides with the FP-assist
    rate rising from 0 to ~12-15 per 100 instructions.
(d) original on PPC970 — lower IPC (~0.35-0.4), much longer run, and *no*
    collapse (no micro-code assist mechanism).
"""

import numpy as np
import pytest
from _harness import ipc_series, monitor_workload, once, save_artifact

from repro.analysis.phase_detect import transition_points
from repro.core.phases import pid_metric_series
from repro.core.screen import get_screen
from repro.sim import NEHALEM, PPC970
from repro.sim.workloads import revolve


def _run_panel(arch, workload, screen="fpassist", tick=2.5):
    recorder, proc = monitor_workload(
        arch,
        workload,
        delay=revolve.SAMPLE_PERIOD,
        tick=tick,
        screen=get_screen(screen),
        seed=31,
        command="R",
    )
    return recorder, proc


def test_fig03a_original_nehalem(benchmark):
    recorder, proc = once(
        benchmark, lambda: _run_panel(NEHALEM, revolve.original())
    )
    series = ipc_series(recorder, proc, "Fig 3a: revolve original, Nehalem IPC")
    save_artifact("fig03a_revolve_nehalem", series.ascii_plot())

    n = len(series)
    assert n == pytest.approx(3327, rel=0.12)  # total samples

    # Nominal plateau at IPC ~1.0 (noisy), collapse to ~0.03.
    head = series.y[: int(0.2 * n)]
    assert head.mean() == pytest.approx(1.0, abs=0.08)
    tail = series.y[int(0.5 * n) :]
    assert np.median(tail) == pytest.approx(0.03, abs=0.02)

    # The transition lands at sample ~953 (the divergence step).
    cuts = transition_points(series, window=20, threshold=0.5)
    assert cuts, "collapse must be detected"
    assert cuts[0] == pytest.approx(953, rel=0.1)

    # Brief pulses: some post-collapse samples bounce visibly upward.
    assert np.max(tail) > 0.3

    # FP assists appear only after the collapse (Fig. 3c's correlation).
    assists = pid_metric_series(recorder, proc.pid, "ASSIST")
    pre = assists.y[: cuts[0] - 5]
    post = assists.y[cuts[0] + 5 :]
    assert pre.mean() < 0.5
    assert np.median(post) == pytest.approx(12.25, abs=2.5)

    zoom = series.window(series.x[max(0, cuts[0] - 100)], series.x[min(n - 1, cuts[0] + 100)])
    save_artifact("fig03c_revolve_zoom", zoom.ascii_plot())


def test_fig03b_clipped_nehalem(benchmark):
    recorder, proc = once(
        benchmark, lambda: _run_panel(NEHALEM, revolve.clipped())
    )
    series = ipc_series(recorder, proc, "Fig 3b: revolve clipped, Nehalem IPC")
    save_artifact("fig03b_revolve_clipped", series.ascii_plot())

    # No collapse: the whole run stays near IPC 1.0.
    assert series.y.mean() == pytest.approx(1.0, abs=0.08)
    assert np.min(series.y) > 0.6

    # Run length ~1478 samples (~2 hours at 5 s/sample): the 2.3x speedup.
    assert len(series) == pytest.approx(1478, rel=0.12)


def test_fig03d_original_ppc970(benchmark):
    recorder, proc = once(
        benchmark,
        lambda: _run_panel(PPC970, revolve.original(), screen="default", tick=5.0),
    )
    series = ipc_series(recorder, proc, "Fig 3d: revolve original, PPC970 IPC")
    save_artifact("fig03d_revolve_ppc970", series.ascii_plot())

    # Lower IPC, longer run, no collapse.
    assert 0.25 < series.y.mean() < 0.5
    assert len(series) > 3500  # longer than the Nehalem run's 3327 samples
    cuts = transition_points(series, window=20, threshold=0.5)
    assert cuts == []  # no detectable phase change
