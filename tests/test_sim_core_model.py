"""Pipeline rate model and calibration."""

import pytest

from repro.errors import SimulationError
from repro.sim import CORE2, NEHALEM, PPC970
from repro.sim.branch import BranchBehavior
from repro.sim.cache import MemoryBehavior
from repro.sim.core import (
    calibrate_phase,
    compute_rates,
    exec_cpi_for_target_ipc,
    memory_cpi,
    solo_rates,
)
from repro.sim.events import Event
from repro.sim.isa import InstructionMix, OperandProfile
from repro.sim.workload import Phase


def _phase(**kw):
    defaults = dict(
        name="p",
        instructions=1e9,
        mix=InstructionMix.of(int_alu=0.5, load=0.25, branch=0.15, fp_x87=0.1),
        memory=MemoryBehavior(working_set=1 << 20),
        branches=BranchBehavior(mispredict_ratio=0.02),
        exec_cpi=0.6,
        noise=0.0,
    )
    defaults.update(kw)
    return Phase(**defaults)


class TestComputeRates:
    def test_cpi_is_sum_of_components(self):
        r = solo_rates(NEHALEM, _phase())
        assert r.cpi == pytest.approx(
            r.cpi_exec + r.cpi_memory + r.cpi_branch + r.cpi_assist
        )

    def test_events_have_instructions_unity(self):
        r = solo_rates(NEHALEM, _phase())
        assert r.events[Event.INSTRUCTIONS] == 1.0
        assert r.events[Event.CYCLES] == pytest.approx(r.cpi)

    def test_event_rates_match_mix(self):
        p = _phase()
        r = solo_rates(NEHALEM, p)
        assert r.events[Event.LOADS] == p.mix.loads
        assert r.events[Event.BRANCH_INSTRUCTIONS] == p.mix.branches
        assert r.events[Event.X87_OPERATIONS] == p.mix.x87_ops

    def test_llc_events_for_three_level_arch(self):
        r = solo_rates(NEHALEM, _phase())
        assert Event.L3_MISSES in r.events
        assert r.events[Event.CACHE_MISSES] == pytest.approx(
            r.events[Event.L3_MISSES]
        )

    def test_two_level_arch_has_no_l3(self):
        r = solo_rates(PPC970, _phase())
        assert Event.L3_MISSES not in r.events
        assert r.events[Event.CACHE_MISSES] == pytest.approx(
            r.events[Event.L2_MISSES]
        )

    def test_issue_share_slows_exec_only(self):
        p = _phase()
        caps = [(s, float(s.size)) for s in NEHALEM.cache_levels]
        solo = compute_rates(NEHALEM, p, caps, issue_share=1.0)
        smt = compute_rates(NEHALEM, p, caps, issue_share=0.5)
        assert smt.cpi_exec == pytest.approx(2 * solo.cpi_exec)
        assert smt.cpi_memory == pytest.approx(solo.cpi_memory)

    def test_issue_share_bounds(self):
        p = _phase()
        caps = [(s, float(s.size)) for s in NEHALEM.cache_levels]
        with pytest.raises(SimulationError):
            compute_rates(NEHALEM, p, caps, issue_share=0.0)
        with pytest.raises(SimulationError):
            compute_rates(NEHALEM, p, caps, issue_share=1.5)

    def test_noise_factor_scales_exec(self):
        p = _phase()
        caps = [(s, float(s.size)) for s in NEHALEM.cache_levels]
        calm = compute_rates(NEHALEM, p, caps, noise_factor=1.0)
        rough = compute_rates(NEHALEM, p, caps, noise_factor=1.2)
        assert rough.cpi_exec == pytest.approx(1.2 * calm.cpi_exec)

    def test_assist_tax_visible(self):
        p = _phase(operands=OperandProfile(nonfinite=1.0))
        r = solo_rates(NEHALEM, p)
        assert r.cpi_assist > 10  # 0.1 x87 * 264 cycles
        assert r.events[Event.FP_ASSIST] == pytest.approx(0.1)

    def test_memory_latency_override(self):
        p = _phase(memory=MemoryBehavior(working_set=1 << 28))
        caps = [(s, float(s.size)) for s in NEHALEM.cache_levels]
        fast = compute_rates(NEHALEM, p, caps, mem_latency_cycles=100.0)
        slow = compute_rates(NEHALEM, p, caps, mem_latency_cycles=400.0)
        assert slow.cpi_memory > fast.cpi_memory

    def test_arch_factor_applies(self):
        p = _phase(arch_factors=(("ppc970", 2.0),))
        base = solo_rates(PPC970, _phase())
        scaled = solo_rates(PPC970, p)
        assert scaled.cpi_exec == pytest.approx(2 * base.cpi_exec)

    def test_ipc_property(self):
        r = solo_rates(NEHALEM, _phase())
        assert r.ipc == pytest.approx(1 / r.cpi)


class TestMemoryCpi:
    def test_mlp_divides(self):
        p = _phase(memory=MemoryBehavior(working_set=1 << 28, mlp=1.0))
        q = _phase(memory=MemoryBehavior(working_set=1 << 28, mlp=4.0))
        assert solo_rates(NEHALEM, p).cpi_memory == pytest.approx(
            4 * solo_rates(NEHALEM, q).cpi_memory
        )

    def test_bad_mlp(self):
        r = solo_rates(NEHALEM, _phase())
        with pytest.raises(SimulationError):
            memory_cpi(r.miss_profile, list(NEHALEM.cache_levels), 180.0, mlp=0)


class TestCalibration:
    @pytest.mark.parametrize("target", [0.5, 1.0, 1.5, 1.8])
    def test_roundtrip(self, target):
        calibrated = calibrate_phase(NEHALEM, _phase(), target)
        assert solo_rates(NEHALEM, calibrated).ipc == pytest.approx(target, rel=1e-6)

    def test_high_ipc_needs_friendly_memory(self):
        friendly = _phase(memory=MemoryBehavior(working_set=16 * 1024))
        calibrated = calibrate_phase(NEHALEM, friendly, 2.5)
        assert solo_rates(NEHALEM, calibrated).ipc == pytest.approx(2.5, rel=1e-6)

    def test_unreachable_raises(self):
        heavy = _phase(
            memory=MemoryBehavior(working_set=1 << 31, mlp=1.0, locality=0.2)
        )
        with pytest.raises(SimulationError):
            exec_cpi_for_target_ipc(NEHALEM, heavy, 3.9)

    def test_nonpositive_target_rejected(self):
        with pytest.raises(SimulationError):
            exec_cpi_for_target_ipc(NEHALEM, _phase(), 0.0)

    def test_transfers_across_archs(self):
        """A memory-touching phase calibrated on Nehalem is slower on the
        older machines (Fig. 6's ordering); PPC970 is slowest."""
        p = calibrate_phase(
            NEHALEM,
            _phase(memory=MemoryBehavior(working_set=64 << 20, mlp=3.0)),
            0.9,
        )
        core2 = solo_rates(CORE2, p).ipc
        ppc = solo_rates(PPC970, p).ipc
        assert core2 < 0.9
        assert ppc < core2


class TestRateCacheEviction:
    """A full store must shed its *oldest* half, not thrash to empty."""

    def _fill(self, cache, n, start=0):
        phases = []
        for i in range(start, start + n):
            p = _phase(name=f"p{i}")
            phases.append(p)
            cache.rates(NEHALEM, p, [(s, float(s.size)) for s in NEHALEM.cache_levels])
        return phases

    def test_insert_at_capacity_evicts_oldest_half(self):
        from repro.sim.core import RateCache

        cache = RateCache(max_entries=8)
        phases = self._fill(cache, 8)
        assert len(cache) == 8
        extra = self._fill(cache, 1, start=100)
        # Oldest 4 gone, newest 4 survived, plus the trigger entry.
        assert len(cache) == 5
        caps = [(s, float(s.size)) for s in NEHALEM.cache_levels]
        hits_before = cache.hits
        for p in phases[4:] + extra:
            cache.rates(NEHALEM, p, caps)
        assert cache.hits == hits_before + 5
        misses_before = cache.misses
        for p in phases[:4]:
            cache.rates(NEHALEM, p, caps)
        assert cache.misses == misses_before + 4

    def test_drifting_working_set_stays_warm(self):
        """The grid's co-schedule population drifts as jobs come and go
        (a sliding window over phase keys). Wholesale clear() repeatedly
        dropped the still-live window (~68% hit rate on this script);
        keeping the recent half keeps it warm."""
        from repro.sim.core import RateCache

        cache = RateCache(max_entries=8)
        caps = [(s, float(s.size)) for s in NEHALEM.cache_levels]
        phases = [_phase(name=f"w{i}") for i in range(64)]
        accesses = 0
        for start in range(60):
            for p in phases[start:start + 5]:
                cache.rates(NEHALEM, p, caps)
                accesses += 1
        assert cache.hits / accesses > 0.75

    def test_hit_returns_identical_object_after_eviction_cycles(self):
        from repro.sim.core import RateCache

        cache = RateCache(max_entries=4)
        p = _phase(name="keep")
        caps = [(s, float(s.size)) for s in NEHALEM.cache_levels]
        first = cache.rates(NEHALEM, p, caps)
        self._fill(cache, 16, start=50)  # churn through several evictions
        again = cache.rates(NEHALEM, p, caps)
        # Entry was evicted and recomputed: equal rates, fresh object.
        assert again == first

    def test_clear_still_empties(self):
        from repro.sim.core import RateCache

        cache = RateCache(max_entries=8)
        self._fill(cache, 5)
        cache.clear()
        assert len(cache) == 0
