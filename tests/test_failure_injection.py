"""Failure injection: the tool must survive a misbehaving kernel.

Real monitors race the kernel constantly — tasks die between listing and
attach, reads hit stale fds, opens fail transiently. These tests wrap the
sim backend with fault injectors and assert the sampler degrades gracefully
(skips the victim, keeps everything else, leaks nothing).
"""

import itertools

import pytest

from repro.core.options import Options
from repro.core.sampler import Sampler
from repro.core.screen import get_screen
from repro.errors import CounterStateError, NoSuchTaskError, PerfError
from repro.perf.simbackend import SimBackend
from repro.procfs.model import ProcessInfo
from repro.procfs.simproc import SimProcReader


class FlakyBackend:
    """Delegates to a real backend, failing on a schedule."""

    def __init__(self, inner, *, fail_opens=(), fail_reads=()):
        self.inner = inner
        self._open_counter = itertools.count(1)
        self._read_counter = itertools.count(1)
        self.fail_opens = set(fail_opens)
        self.fail_reads = set(fail_reads)

    def open(self, event, tid, *, inherit=False, sample_period=None):
        if next(self._open_counter) in self.fail_opens:
            raise PerfError("injected: transient open failure")
        return self.inner.open(
            event, tid, inherit=inherit, sample_period=sample_period
        )

    def read(self, handle):
        if next(self._read_counter) in self.fail_reads:
            raise CounterStateError("injected: stale handle")
        return self.inner.read(handle)

    def enable(self, handle):
        self.inner.enable(handle)

    def disable(self, handle):
        self.inner.disable(handle)

    def reset(self, handle):
        self.inner.reset(handle)

    def close(self, handle):
        self.inner.close(handle)


class VanishingTasks:
    """A /proc provider whose chosen pid exists in listings but not reads
    (the classic exit-between-listdir-and-open race)."""

    def __init__(self, inner, ghost_pid):
        self.inner = inner
        self.ghost_pid = ghost_pid

    def uptime(self):
        return self.inner.uptime()

    def list_processes(self):
        procs = self.inner.list_processes()
        ghost = ProcessInfo(
            pid=self.ghost_pid,
            tids=(self.ghost_pid,),
            uid=0,
            user="ghost",
            comm="ghost",
            state="R",
            cpu_seconds=0.0,
            start_time=0.0,
            processor=0,
        )
        return [*procs, ghost]

    def process(self, pid):
        return self.inner.process(pid)  # raises for the ghost


class TestAttachFailures:
    def test_transient_open_failure_skips_task_then_recovers(
        self, coarse_machine, endless_workload
    ):
        coarse_machine.spawn("a", endless_workload)
        coarse_machine.spawn("b", endless_workload)
        backend = FlakyBackend(SimBackend(coarse_machine), fail_opens={1})
        sampler = Sampler(
            backend, SimProcReader(coarse_machine), get_screen("default")
        )
        snap = sampler.sample()
        # One task failed to attach this round; the other is monitored.
        assert len(snap.rows) == 1
        assert sampler.proclist.attach_errors == 1
        coarse_machine.run_for(2.0)
        # The failure was transient: the task attaches on a later refresh.
        snap = sampler.sample()
        coarse_machine.run_for(2.0)
        snap = sampler.sample()
        assert len(snap.rows) == 2
        sampler.close()
        assert coarse_machine.counters.open_count() == 0

    def test_ghost_task_attach_does_not_crash(
        self, coarse_machine, endless_workload
    ):
        coarse_machine.spawn("real", endless_workload)
        tasks = VanishingTasks(SimProcReader(coarse_machine), ghost_pid=99999)
        sampler = Sampler(
            SimBackend(coarse_machine), tasks, get_screen("default")
        )
        snap = sampler.sample()
        assert [r.comm for r in snap.rows] == ["real"]
        assert sampler.proclist.attach_errors >= 1
        sampler.close()


class TestReadFailures:
    def test_stale_read_drops_row_keeps_others(
        self, coarse_machine, endless_workload
    ):
        coarse_machine.spawn("a", endless_workload)
        coarse_machine.spawn("b", endless_workload)
        backend = FlakyBackend(SimBackend(coarse_machine))
        sampler = Sampler(
            backend, SimProcReader(coarse_machine), get_screen("default")
        )
        sampler.sample()
        coarse_machine.run_for(2.0)
        # Fail the very next read (first counter of the first task);
        # peeking the itertools counter consumes one slot, so target +1.
        backend.fail_reads = {next(backend._read_counter) + 1}
        snap = sampler.sample()
        assert len(snap.rows) == 1  # victim skipped, not fatal
        coarse_machine.run_for(2.0)
        snap = sampler.sample()
        assert len(snap.rows) == 2  # back to normal
        sampler.close()


class TestPermanentDenial:
    def test_denied_tasks_not_retried(self, coarse_machine, endless_workload):
        coarse_machine.spawn("mine", endless_workload, uid=1001)
        coarse_machine.spawn("theirs", endless_workload, uid=1002)
        backend = SimBackend(coarse_machine, monitor_uid=1001)
        sampler = Sampler(
            backend, SimProcReader(coarse_machine), get_screen("default")
        )
        sampler.sample()
        denied_after_first = set(sampler.proclist.denied)
        coarse_machine.run_for(2.0)
        sampler.sample()
        # The denial is cached; no repeated attach storm.
        assert sampler.proclist.denied == denied_after_first
        assert len(denied_after_first) == 1
        sampler.close()
