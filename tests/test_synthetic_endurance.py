"""Synthetic populations + endurance: tiptop under sustained churn."""

import math

import pytest

from repro import Options, SimHost, TipTop
from repro.errors import WorkloadError
from repro.sim import NEHALEM, SimMachine
from repro.sim.core import solo_rates
from repro.sim.workloads import synthetic


class TestGenerator:
    def test_deterministic(self):
        a = synthetic.generate_specs(20, seed=5)
        b = synthetic.generate_specs(20, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = synthetic.generate_specs(20, seed=5)
        b = synthetic.generate_specs(20, seed=6)
        assert a != b

    def test_bad_inputs(self):
        with pytest.raises(WorkloadError):
            synthetic.generate_specs(0)
        with pytest.raises(WorkloadError):
            synthetic.generate_specs(5, service_fraction=2.0)

    def test_archetype_coverage(self):
        specs = synthetic.generate_specs(60, seed=1)
        seen = {s.archetype for s in specs}
        assert seen == set(synthetic.ARCHETYPES)

    def test_build_calibration_holds(self):
        """Every archetype's first phase lands on its published multiple
        of the target (1.0 for single-regime shapes; multi-phase shapes
        open away from the mean — see ``synthetic.FIRST_PHASE_IPC``)."""
        for spec in synthetic.generate_specs(30, seed=2):
            workload = synthetic.build(spec)
            ipc = solo_rates(NEHALEM, workload.phases[0]).ipc
            factor = synthetic.FIRST_PHASE_IPC[spec.archetype]
            assert ipc == pytest.approx(spec.target_ipc * factor, rel=1e-6)

    def test_services_are_endless(self):
        specs = synthetic.generate_specs(40, seed=3, service_fraction=1.0)
        for spec in specs:
            assert math.isinf(synthetic.build(spec).total_instructions)


class TestEndurance:
    def test_long_run_with_churn_leaks_nothing(self):
        """Hours of virtual monitoring over a churning population."""
        machine = SimMachine(
            NEHALEM, sockets=2, cores_per_socket=4, tick=1.0, seed=4
        )
        specs = synthetic.generate_specs(40, seed=4, service_fraction=0.1)
        cursor = iter(specs)

        def topup():
            while len(machine.live_processes()) < 10:
                try:
                    spec = next(cursor)
                except StopIteration:
                    return
                machine.spawn(
                    spec.name,
                    synthetic.build(spec),
                    duty_cycle=spec.duty_cycle,
                    nthreads=spec.nthreads,
                )
            machine.at(machine.now + 5.0, topup)

        machine.at(0.0, topup)
        app = TipTop(SimHost(machine), Options(delay=10.0))
        with app:
            recorder = app.run_collect(120)  # 20 virtual minutes

        # Every job that lived through at least two refresh intervals was
        # observed (a job can die between discovery refreshes — §2.2's
        # "only events after the start of tiptop are observed" cuts both
        # ways for very short jobs).
        observed = {s.comm for s in recorder.samples}
        spawned = {p.command for p in machine.processes.values()}
        by_name = {s.name: s for s in specs}
        long_enough = {
            p.command
            for p in machine.processes.values()
            if p.start_time < machine.now - 25.0
            and by_name[p.command].duration > 30.0
        }
        assert long_enough <= observed
        # All IPC readings stay physical.
        for sample in recorder.samples:
            value = sample.values.get("IPC")
            if isinstance(value, float) and not math.isnan(value):
                assert 0.0 < value < NEHALEM.issue_width
        # No counter leaks after close (dead tasks detached on the way).
        assert machine.counters.open_count() == 0
        assert len(spawned) >= 30  # real churn happened

    def test_endurance_is_deterministic(self):
        def run():
            machine = SimMachine(NEHALEM, tick=1.0, seed=9)
            for spec in synthetic.generate_specs(8, seed=9):
                machine.spawn(spec.name, synthetic.build(spec),
                              duty_cycle=spec.duty_cycle)
            app = TipTop(SimHost(machine), Options(delay=5.0))
            with app:
                recorder = app.run_collect(20)
            return [
                (s.time, s.pid, round(s.deltas.get("instructions", 0.0), 3))
                for s in recorder.samples
            ]

        assert run() == run()
