"""Simulated kernel backend: perf_event semantics."""

import pytest

from repro.errors import (
    CounterStateError,
    EventError,
    NoSuchTaskError,
    PerfPermissionError,
)
from repro.perf.events import resolve_event
from repro.perf.simbackend import SimBackend
from repro.sim import PPC970, SimMachine


@pytest.fixture
def machine(nehalem_machine, endless_workload):
    nehalem_machine.spawn("job", endless_workload, user="alice", uid=1001)
    return nehalem_machine


@pytest.fixture
def backend(machine):
    return SimBackend(machine, monitor_uid=0)


def _pid(machine):
    return machine.live_processes()[0].pid


class TestOpen:
    def test_open_and_read(self, machine, backend):
        h = backend.open(resolve_event("cycles"), _pid(machine))
        machine.run_for(1.0)
        reading = backend.read(h)
        assert reading.value > 0
        assert reading.time_enabled == pytest.approx(1.0)
        assert reading.time_running == pytest.approx(1.0)

    def test_no_such_task(self, backend):
        with pytest.raises(NoSuchTaskError):
            backend.open(resolve_event("cycles"), 424242)

    def test_dead_task(self, machine, backend):
        pid = _pid(machine)
        machine.kill(pid)
        with pytest.raises(NoSuchTaskError):
            backend.open(resolve_event("cycles"), pid)

    def test_permission_enforced(self, machine):
        """Footnote 1: unprivileged monitors only watch their own tasks."""
        stranger = SimBackend(machine, monitor_uid=2002)
        with pytest.raises(PerfPermissionError):
            stranger.open(resolve_event("cycles"), _pid(machine))

    def test_owner_may_watch_own(self, machine):
        own = SimBackend(machine, monitor_uid=1001)
        own.open(resolve_event("cycles"), _pid(machine))

    def test_root_may_watch_anyone(self, machine, backend):
        backend.open(resolve_event("cycles"), _pid(machine))

    def test_pmu_capability_enforced(self, endless_workload):
        m = SimMachine(PPC970, tick=0.1)
        p = m.spawn("j", endless_workload)
        b = SimBackend(m)
        with pytest.raises(EventError):
            b.open(resolve_event("fp-assist"), p.pid)


class TestLifecycle:
    def test_enable_disable(self, machine, backend):
        h = backend.open(resolve_event("instructions"), _pid(machine))
        backend.disable(h)
        machine.run_for(1.0)
        assert backend.read(h).value == 0
        backend.enable(h)
        machine.run_for(1.0)
        assert backend.read(h).value > 0

    def test_reset_zeroes_value(self, machine, backend):
        h = backend.open(resolve_event("instructions"), _pid(machine))
        machine.run_for(1.0)
        backend.reset(h)
        assert backend.read(h).value == 0

    def test_close_releases(self, machine, backend):
        h = backend.open(resolve_event("cycles"), _pid(machine))
        backend.close(h)
        with pytest.raises(CounterStateError):
            backend.read(h)
        assert backend.open_handle_count() == 0
        assert machine.counters.open_count() == 0

    def test_double_close_raises(self, machine, backend):
        h = backend.open(resolve_event("cycles"), _pid(machine))
        backend.close(h)
        with pytest.raises(CounterStateError):
            backend.close(h)


class TestInherit:
    def test_inherit_sums_threads(self, nehalem_machine, endless_workload):
        p = nehalem_machine.spawn("mt", endless_workload, nthreads=4)
        b = SimBackend(nehalem_machine)
        whole = b.open(resolve_event("instructions"), p.pid, inherit=True)
        single = b.open(resolve_event("instructions"), p.threads[1].tid)
        nehalem_machine.run_for(2.0)
        total = b.read(whole).value
        one = b.read(single).value
        assert total > one  # 4 threads beat 1
        assert total == pytest.approx(4 * one, rel=0.1)

    def test_thread_tid_addressable(self, nehalem_machine, endless_workload):
        p = nehalem_machine.spawn("mt", endless_workload, nthreads=2)
        b = SimBackend(nehalem_machine)
        h = b.open(resolve_event("cycles"), p.threads[1].tid)
        nehalem_machine.run_for(0.5)
        assert b.read(h).value > 0


class TestCounterSemantics:
    def test_events_only_after_attach(self, machine, backend):
        """Monitoring can start at any time; only later events are seen."""
        machine.run_for(2.0)
        h = backend.open(resolve_event("instructions"), _pid(machine))
        first = backend.read(h).value
        assert first == 0
        machine.run_for(1.0)
        assert backend.read(h).value > 0

    def test_unscheduled_task_enabled_grows_running_does_not(
        self, nehalem_machine, endless_workload
    ):
        # 9 jobs pinned to one PU: mostly waiting.
        procs = [
            nehalem_machine.spawn(f"j{i}", endless_workload, affinity={0})
            for i in range(9)
        ]
        b = SimBackend(nehalem_machine)
        h = b.open(resolve_event("cycles"), procs[0].pid)
        nehalem_machine.run_for(9.0)
        r = b.read(h)
        assert r.time_enabled == pytest.approx(9.0)
        assert r.time_running < r.time_enabled
