"""Tracked-task set: discover, attach, detach — and survive failures.

Each refresh, tiptop rescans the process list: new tasks get counters
attached (monitoring can start at any time — no restart needed, §2.2), and
tasks that exited are detached and their counters closed. The attach/read
error paths follow an explicit lifecycle policy:

* **Permission denials** (other users' processes under an unprivileged
  monitor) are remembered so they are not retried on every refresh.
* **Transient errors** (EINTR/EAGAIN/corrupt reads) get a bounded number
  of immediate retries with optional backoff; only exhaustion counts as
  an attach failure, and the task is retried at the next refresh.
* **Per-task failures** (stale handles, ESRCH mid-read) *quarantine* the
  task: its counters are closed at once (no fd leaks), and reattach is
  attempted after an exponentially growing number of refreshes. A task
  that comes back is marked ``reattached`` for one interval. The episode
  count survives reattach (a flapping task keeps escalating) until the
  task completes a clean interval.

The per-task ``health`` value ("ok", "retry", "reattached") feeds the
HEALTH screen column under ``--chaos``; :meth:`ProcessList.health_report`
adds the quarantined set for programmatic consumers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.options import Options
from repro.errors import (
    NoSuchTaskError,
    PerfError,
    PerfPermissionError,
    TransientPerfError,
)
from repro.perf.counter import Backend, CounterGroup
from repro.perf.events import EventSpec
from repro.procfs.model import ProcessInfo, TaskProvider

#: Cap on the quarantine backoff, in refreshes (2**(failures-1), clamped).
MAX_QUARANTINE_REFRESHES = 8


@dataclass
class TrackedTask:
    """One monitored task and its counters.

    ``tid`` is the process pid in per-process mode, or an individual thread
    id in per-thread mode (§2.2). ``health`` is the task's lifecycle state
    as of its last sampled interval.
    """

    pid: int
    tid: int
    group: CounterGroup
    last_info: ProcessInfo | None = None
    first_seen: float = 0.0
    health: str = "ok"
    reattach_reported: bool = False


@dataclass
class QuarantineEntry:
    """Why a task is benched and when it may come back.

    Attributes:
        failures: quarantine episodes so far (drives the backoff).
        eligible_at: refresh counter value at which reattach is allowed.
        reason: exception class name of the failure that benched it.
    """

    failures: int
    eligible_at: int
    reason: str


@dataclass
class ProcessList:
    """The set of currently monitored tasks.

    Args:
        backend: perf backend for counter attach/close.
        tasks: /proc provider.
        events: counter events each task gets.
        options: watch filters, per-thread mode, retry budget.
    """

    backend: Backend
    tasks: TaskProvider
    events: list[EventSpec]
    options: Options
    tracked: dict[int, TrackedTask] = field(default_factory=dict)
    denied: set[int] = field(default_factory=set)
    quarantined: dict[int, QuarantineEntry] = field(default_factory=dict)
    #: Quarantine episodes per tid, surviving reattach so a flapping task
    #: (fail, reattach, fail again) keeps escalating its backoff; cleared
    #: by :meth:`note_healthy` once the task completes a clean interval.
    quarantine_history: dict[int, int] = field(default_factory=dict)
    attach_errors: int = 0
    attach_retries: int = 0
    refresh_count: int = 0

    def refresh(self) -> tuple[list[TrackedTask], list[int]]:
        """Rescan /proc; attach new tasks, drop dead ones.

        Returns:
            (attached, detached_tids) for this refresh.
        """
        self.refresh_count += 1
        now = self.tasks.uptime()
        visible = {}
        for info in self.tasks.list_processes():
            if not self.options.wants(pid=info.pid, uid=info.uid, comm=info.comm):
                continue
            if self.options.per_thread:
                for tid in info.tids:
                    visible[tid] = info
            else:
                visible[info.pid] = info

        attached: list[TrackedTask] = []
        for tid, info in visible.items():
            if tid in self.tracked or tid in self.denied:
                continue
            entry = self.quarantined.get(tid)
            if entry is not None and self.refresh_count < entry.eligible_at:
                continue
            if len(self.tracked) >= self.options.max_tasks:
                break
            group = self._attach(tid)
            if group is None:
                continue
            task = TrackedTask(pid=info.pid, tid=tid, group=group, first_seen=now)
            if entry is not None:
                del self.quarantined[tid]
                task.health = "reattached"
            self.tracked[tid] = task
            attached.append(task)

        detached: list[int] = []
        for tid in list(self.tracked):
            if tid not in visible:
                self.tracked[tid].group.close()
                del self.tracked[tid]
                detached.append(tid)
        # A quarantined task that is no longer even listed has exited for
        # good; tids are not recycled, so its entry is dead weight.
        for tid in list(self.quarantined):
            if tid not in visible:
                del self.quarantined[tid]
                self.quarantine_history.pop(tid, None)
        return attached, detached

    def _attach(self, tid: int) -> CounterGroup | None:
        """Open the task's counter group under the retry policy.

        Transient errors are retried up to ``options.retry_limit`` extra
        times (with exponential backoff when ``options.retry_backoff`` is
        set); exhaustion or a hard error counts one attach failure and
        leaves the task for the next refresh. Permission denials are
        cached permanently.
        """
        attempts = 0
        while True:
            try:
                return CounterGroup(
                    self.backend,
                    self.events,
                    tid,
                    inherit=not self.options.per_thread,
                )
            except PerfPermissionError:
                self.denied.add(tid)
                return None
            except TransientPerfError:
                attempts += 1
                if attempts > self.options.retry_limit:
                    self.attach_errors += 1
                    return None
                self.attach_retries += 1
                self._backoff(attempts)
            except (NoSuchTaskError, PerfError):
                self.attach_errors += 1
                return None

    def _backoff(self, attempts: int) -> None:
        if self.options.retry_backoff > 0:
            time.sleep(self.options.retry_backoff * 2 ** (attempts - 1))

    def quarantine(self, tid: int, reason: str) -> None:
        """Bench a failing task: close its counters now, reattach later.

        The group close is guaranteed (exception-safe per counter), so a
        quarantined task never leaks handles. Repeat offenders wait
        exponentially longer: ``2**(failures-1)`` refreshes, capped at
        :data:`MAX_QUARANTINE_REFRESHES`.
        """
        task = self.tracked.pop(tid, None)
        if task is not None:
            task.group.close()
        failures = self.quarantine_history.get(tid, 0) + 1
        self.quarantine_history[tid] = failures
        backoff = min(2 ** (failures - 1), MAX_QUARANTINE_REFRESHES)
        self.quarantined[tid] = QuarantineEntry(
            failures=failures,
            eligible_at=self.refresh_count + backoff,
            reason=reason,
        )

    def note_healthy(self, tid: int) -> None:
        """Forget a task's quarantine history after a clean interval.

        Without this, one bad episode would permanently inflate the
        backoff of every later (unrelated) failure; with it, only tasks
        that keep failing *before proving themselves* escalate.
        """
        self.quarantine_history.pop(tid, None)

    def health_report(self) -> dict[int, str]:
        """Lifecycle state of every known task (tracked and benched)."""
        report = {tid: task.health for tid, task in self.tracked.items()}
        for tid in self.quarantined:
            report[tid] = "quarantined"
        return report

    def close(self) -> None:
        """Detach everything (shutdown)."""
        for task in self.tracked.values():
            task.group.close()
        self.tracked.clear()
