#!/usr/bin/env python3
"""Compiler comparison at full speed (paper §3.3 / Figure 9).

Jayaseelan et al. needed trace extraction plus a cycle-accurate simulator
to study how compilers shape performance; tiptop just watches both binaries
run. This example races the gcc and icc builds of four SPEC benchmarks and
reports what each figure panel shows — including the h264ref phase
*inversion* that aggregate totals hide.

Run:  python examples/compiler_compare.py
"""

import numpy as np

from repro import Options, SimHost, TipTop
from repro.analysis.compare import compare_runs
from repro.analysis.timeseries import MetricSeries
from repro.core.phases import pid_metric_series
from repro.sim import NEHALEM, SimMachine
from repro.sim.workload import Workload
from repro.sim.workloads import spec

SCALE = 10  # shrink the runs for a quick demo


def race(bench: str) -> None:
    print(f"--- {bench} ---")
    traces = {}
    for compiler in ("gcc", "icc"):
        full = spec.workload(bench, compiler)
        small = Workload(
            full.name, tuple(p.with_budget(p.instructions / SCALE) for p in full.phases)
        )
        machine = SimMachine(NEHALEM, tick=0.5, seed=3)
        proc = machine.spawn(f"{bench}-{compiler}", small)
        app = TipTop(SimHost(machine), Options(delay=2.0))
        recorder = app.run_collect(0)
        with app:
            for i, snap in enumerate(app.snapshots()):
                if i > 0:
                    recorder.record(snap)
                if not proc.alive:
                    break
        series = pid_metric_series(recorder, proc.pid, "IPC")
        traces[compiler] = MetricSeries(series.x, series.y, compiler)

    for compiler, series in traces.items():
        head = float(np.mean(series.y[: max(1, len(series) // 4)]))
        tail = float(np.mean(series.y[-max(1, len(series) // 4):]))
        print(
            f"  {compiler}: ran {series.x[-1]:6.0f}s  mean IPC {series.mean():.2f}"
            f"  (first quarter {head:.2f}, last quarter {tail:.2f})"
        )

    verdict = compare_runs(
        traces["gcc"], traces["icc"], same_speed_tolerance=0.1
    )
    print(f"  => {verdict.describe()}")
    print()


def main() -> None:
    for bench in ("456.hmmer", "482.sphinx3", "464.h264ref", "433.milc"):
        race(bench)


if __name__ == "__main__":
    main()
