"""Workload descriptors: phases of instruction-level behaviour.

A :class:`Workload` is an ordered list of :class:`Phase` objects, each a
budget of retired instructions with a fixed behavioural signature
(instruction mix, memory behaviour, branch behaviour, FP operand classes,
and a dependency-limited execution CPI). Phase boundaries are expressed in
*instructions retired*, which is what makes Figure 8's "IPC versus executed
instructions" alignment across architectures natural: the same binary
retires (nearly) the same instruction stream everywhere.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import WorkloadError
from repro.sim.branch import BranchBehavior
from repro.sim.cache import MemoryBehavior
from repro.sim.isa import FINITE_OPERANDS, InstructionMix, OperandProfile


@dataclass(frozen=True)
class Phase:
    """One behavioural phase of a workload.

    Attributes:
        name: label for debugging and analysis.
        instructions: retired-instruction budget of the phase;
            ``math.inf`` makes the phase endless (long-running services).
        mix: instruction-class fractions.
        memory: working set / locality / streaming / MLP description.
        branches: branch predictability.
        operands: FP operand-class distribution (assist eligibility).
        exec_cpi: dependency-limited execution CPI on the *reference*
            architecture (Nehalem); scaled by ``ArchModel.cpi_scale``
            elsewhere. Excludes all miss/mispredict/assist penalties.
        noise: lognormal sigma applied per scheduling tick to ``exec_cpi``
            (models the run-to-run variability of §2.5).
        arch_factors: per-architecture multipliers on ``exec_cpi`` as
            ``(arch_name, factor)`` pairs. Real code interacts with each
            micro-architecture idiosyncratically (gromacs ripples only on
            Nehalem, astar's last phases shift on PPC970 — §3.2); this is
            the calibration hook for those effects.
    """

    name: str
    instructions: float
    mix: InstructionMix
    memory: MemoryBehavior
    branches: BranchBehavior = field(default_factory=BranchBehavior)
    operands: OperandProfile = FINITE_OPERANDS
    exec_cpi: float = 0.6
    noise: float = 0.03
    arch_factors: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise WorkloadError(
                f"phase {self.name!r} needs a positive instruction budget"
            )
        if self.exec_cpi <= 0:
            raise WorkloadError(f"phase {self.name!r} needs exec_cpi > 0")
        if self.noise < 0:
            raise WorkloadError(f"phase {self.name!r} has negative noise")

    def with_budget(self, instructions: float) -> "Phase":
        """Copy of this phase with a different instruction budget."""
        return replace(self, instructions=instructions)

    def arch_factor(self, arch_name: str) -> float:
        """Execution-CPI multiplier of this phase on ``arch_name`` (1.0 default)."""
        for name, factor in self.arch_factors:
            if name == arch_name:
                return factor
        return 1.0


@dataclass(frozen=True)
class Workload:
    """An ordered sequence of phases, optionally repeated.

    Attributes:
        name: workload label (benchmark name, job name).
        phases: the phase sequence.
        repeat: how many times the whole sequence runs (>= 1);
            ignored if any phase is infinite.
    """

    name: str
    phases: tuple[Phase, ...]
    repeat: int = 1

    def __post_init__(self) -> None:
        if not self.phases:
            raise WorkloadError(f"workload {self.name!r} has no phases")
        if self.repeat < 1:
            raise WorkloadError(f"workload {self.name!r} repeat must be >= 1")
        infinite = [p for p in self.phases if math.isinf(p.instructions)]
        if infinite and infinite[0] is not self.phases[-1] or len(infinite) > 1:
            raise WorkloadError(
                f"workload {self.name!r}: only the final phase may be infinite"
            )

    @property
    def total_instructions(self) -> float:
        """Total retired instructions (inf for endless workloads)."""
        return self._tables()[0] * self.repeat

    def _cumulative(self) -> np.ndarray:
        return np.cumsum([p.instructions for p in self.phases])

    def _tables(self) -> tuple[float, tuple[float, ...]]:
        """``(per_pass, cumulative budgets)``, memoised.

        ``locate`` runs on every dispatch of every thread sharing this
        workload; the sums are loop-invariant, so they are accumulated once
        — in exactly the order the unmemoised code used, keeping every
        float identical — and cached on the instance.
        """
        cached = self.__dict__.get("_locate_tables")
        if cached is None:
            per_pass = sum(p.instructions for p in self.phases)
            cums: list[float] = []
            cum = 0.0
            for phase in self.phases:
                cum += phase.instructions
                cums.append(cum)
            cached = (per_pass, tuple(cums))
            object.__setattr__(self, "_locate_tables", cached)
        return cached

    def locate(self, retired: float) -> tuple[Phase, float] | None:
        """Phase active after ``retired`` instructions, and budget left in it.

        Returns ``None`` when the workload has completed (the process should
        exit). ``retired`` counts from the very start, across repeats.
        """
        if retired < 0:
            raise WorkloadError(f"retired must be >= 0, got {retired}")
        per_pass, cums = self._tables()
        if math.isinf(per_pass):
            pass_retired = retired
        else:
            # Accumulated float error from walking phase-by-phase can leave
            # `retired` an ulp short of a boundary; snap within a relative
            # epsilon so walkers cannot stall on sub-ulp remainders. The
            # epsilon scales with the *global* cursor (where the ulp noise
            # lives), not with the local pass offset or phase budget.
            eps = 1e-12 * max(per_pass, retired, 1.0)
            full_passes = int((retired + eps) // per_pass)
            if full_passes >= self.repeat:
                return None
            pass_retired = max(0.0, retired - full_passes * per_pass)
        eps = 1e-12 * max(retired, 1.0)
        for phase, cum in zip(self.phases, cums):
            if math.isinf(phase.instructions):
                return phase, math.inf
            if pass_retired < cum - eps:
                return phase, cum - pass_retired
        # retired landed exactly on a pass boundary: start the next pass
        return self.phases[0], self.phases[0].instructions

    def phase_names(self) -> list[str]:
        """Names of the phases in order."""
        return [p.name for p in self.phases]


def steady(name: str, phase: Phase) -> Workload:
    """A single-phase workload (convenience)."""
    return Workload(name=name, phases=(phase,))
