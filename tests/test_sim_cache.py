"""Analytic cache model: hit curves, miss chains, contention, inclusion."""

import pytest

from repro.errors import SimulationError, WorkloadError
from repro.sim import NEHALEM
from repro.sim.arch import CacheLevelSpec, CacheScope
from repro.sim.cache import (
    CacheHierarchy,
    CacheInstance,
    MemoryBehavior,
    cumulative_hit,
    hit_ratio,
    miss_chain,
)
from repro.sim.cpu_topology import Topology


def _levels(caps=None):
    specs = NEHALEM.cache_levels
    caps = caps or [float(s.size) for s in specs]
    return list(zip(specs, caps))


class TestHitRatio:
    def test_fits_entirely(self):
        assert hit_ratio(1024, 512, 0.5) == 1.0

    def test_zero_working_set_hits(self):
        assert hit_ratio(1024, 0, 0.5) == 1.0

    def test_zero_capacity_misses(self):
        assert hit_ratio(0, 1024, 0.5) == 0.0

    def test_power_law(self):
        assert hit_ratio(256, 1024, 0.5) == pytest.approx(0.5)

    def test_monotone_in_capacity(self):
        hits = [hit_ratio(c, 1 << 20, 0.5) for c in (1 << 10, 1 << 14, 1 << 18)]
        assert hits == sorted(hits)


class TestMemoryBehavior:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            MemoryBehavior(working_set=-1)
        with pytest.raises(WorkloadError):
            MemoryBehavior(working_set=1, locality=0)
        with pytest.raises(WorkloadError):
            MemoryBehavior(working_set=1, streaming=1.5)
        with pytest.raises(WorkloadError):
            MemoryBehavior(working_set=1, mlp=0)

    def test_hit_ratios_must_be_cumulative(self):
        with pytest.raises(WorkloadError):
            MemoryBehavior(working_set=1, level_hit_ratios=(0.9, 0.5))

    def test_hit_ratio_bounds(self):
        with pytest.raises(WorkloadError):
            MemoryBehavior(working_set=1, level_hit_ratios=(1.2,))

    def test_negative_amplification_rejected(self):
        with pytest.raises(WorkloadError):
            MemoryBehavior(working_set=1, miss_amplification=(-1.0,))


class TestCumulativeHit:
    def test_full_capacity_returns_declared_ratio(self):
        b = MemoryBehavior(working_set=1 << 30, level_hit_ratios=(0.85, 0.91, 0.92))
        spec = NEHALEM.cache_levels[0]
        assert cumulative_hit(b, 0, spec, float(spec.size)) == pytest.approx(0.85)

    def test_halved_share_amplifies_misses(self):
        b = MemoryBehavior(
            working_set=1 << 30,
            level_hit_ratios=(0.85,),
            miss_amplification=(1.0,),
        )
        spec = NEHALEM.cache_levels[0]
        h = cumulative_hit(b, 0, spec, spec.size / 2)
        assert 1 - h == pytest.approx(2 * 0.15)

    def test_small_working_set_immune_to_share_loss(self):
        # A working set that fits in the reduced share loses nothing.
        b = MemoryBehavior(working_set=1024, level_hit_ratios=(0.96,))
        spec = NEHALEM.cache_levels[0]  # 32 KB
        assert cumulative_hit(b, 0, spec, spec.size / 4) == pytest.approx(0.96)

    def test_power_law_fallback_uses_floor(self):
        b = MemoryBehavior(working_set=1 << 30)
        spec = NEHALEM.cache_levels[0]
        h = cumulative_hit(b, 0, spec, float(spec.size))
        assert h >= spec.hit_floor


class TestMissChain:
    def test_conservation(self):
        """Misses never exceed accesses at any level; accesses chain."""
        b = MemoryBehavior(working_set=1 << 30, level_hit_ratios=(0.85, 0.91, 0.92))
        p = miss_chain(b, 0.35, _levels())
        for acc, miss in zip(p.accesses, p.misses):
            assert 0 <= miss <= acc + 1e-12
        for i in range(1, len(p.accesses)):
            assert p.accesses[i] == pytest.approx(p.misses[i - 1])

    def test_calibrated_mcf_profile(self):
        """The mcf numbers behind Fig. 11: L1 5.25, L2 3.15, L3 2.8 per 100."""
        b = MemoryBehavior(working_set=1 << 30, level_hit_ratios=(0.85, 0.91, 0.92))
        p = miss_chain(b, 0.35, _levels())
        assert 100 * p.misses[0] == pytest.approx(5.25)
        assert 100 * p.misses[1] == pytest.approx(3.15)
        assert 100 * p.misses[2] == pytest.approx(2.80)

    def test_streaming_misses_everywhere(self):
        b = MemoryBehavior(working_set=64, streaming=1.0)
        p = miss_chain(b, 0.2, _levels())
        for miss in p.misses:
            assert miss == pytest.approx(0.2)

    def test_inclusion_clamp_l3_loss_raises_inner_misses(self):
        """Losing LLC share raises L1/L2 misses too (inclusive hierarchy)."""
        b = MemoryBehavior(
            working_set=1 << 30,
            level_hit_ratios=(0.85, 0.91, 0.92),
            miss_amplification=(1.0, 1.0, 1.0),
        )
        specs = NEHALEM.cache_levels
        caps = [float(specs[0].size), float(specs[1].size), specs[2].size / 4]
        p = miss_chain(b, 0.35, list(zip(specs, caps)))
        full = miss_chain(b, 0.35, _levels())
        assert p.misses[1] > full.misses[1]  # L2 misses rise
        assert p.misses[2] > full.misses[2]  # L3 misses rise

    def test_l2_loss_leaves_llc_misses_alone(self):
        """Fig. 11d: SMT-shared L2 thrash does not change L3 misses."""
        b = MemoryBehavior(
            working_set=1 << 30,
            level_hit_ratios=(0.85, 0.91, 0.92),
            miss_amplification=(1.45, 2.35, 0.48),
        )
        specs = NEHALEM.cache_levels
        caps = [specs[0].size / 2, specs[1].size / 2, float(specs[2].size)]
        p = miss_chain(b, 0.35, list(zip(specs, caps)))
        full = miss_chain(b, 0.35, _levels())
        assert p.misses[1] > 3 * full.misses[1]  # L2 explodes
        assert p.misses[2] == pytest.approx(full.misses[2])  # L3 unchanged

    def test_zero_refs(self):
        b = MemoryBehavior(working_set=1 << 20)
        p = miss_chain(b, 0.0, _levels())
        assert all(m == 0 for m in p.misses)

    def test_llc_properties(self):
        b = MemoryBehavior(working_set=1 << 30, level_hit_ratios=(0.85, 0.91, 0.92))
        p = miss_chain(b, 0.35, _levels())
        assert p.llc_miss_rate == p.misses[-1]
        assert p.llc_access_rate == p.accesses[-1]


class TestCacheInstance:
    def _instance(self):
        return CacheInstance(NEHALEM.cache_levels[2], 2, frozenset({0, 1, 2, 3}))

    def test_solo_gets_full_capacity(self):
        inst = self._instance()
        assert inst.effective_capacity({1: 5.0}, 1) == pytest.approx(
            inst.spec.size, rel=0.05
        )

    def test_equal_pressure_splits_evenly(self):
        inst = self._instance()
        pressures = {1: 10.0, 2: 10.0}
        assert inst.effective_capacity(pressures, 1) == pytest.approx(
            inst.spec.size / 2, rel=0.05
        )

    def test_no_pressure_full_capacity(self):
        inst = self._instance()
        assert inst.effective_capacity({}, 1) == inst.spec.size

    def test_heavier_pressure_gets_more(self):
        inst = self._instance()
        pressures = {1: 30.0, 2: 10.0}
        big = inst.effective_capacity(pressures, 1)
        small = inst.effective_capacity(pressures, 2)
        assert big > small
        assert big + small == pytest.approx(inst.spec.size, rel=0.1)


class TestCacheHierarchy:
    def _hierarchy(self):
        topo = Topology(NEHALEM, 1, 4)
        return CacheHierarchy(NEHALEM, topo.pu_to_core(), topo.core_to_socket()), topo

    def test_path_has_all_levels(self):
        h, _ = self._hierarchy()
        path = h.path_for_pu(0)
        assert [i.spec.name for i in path] == ["L1", "L2", "L3"]

    def test_smt_siblings_share_private_caches(self):
        h, topo = self._hierarchy()
        # PU0 and PU4 are SMT threads of core 0 (Fig. 11c numbering).
        l1_a = h.path_for_pu(0)[0]
        l1_b = h.path_for_pu(4)[0]
        assert l1_a is l1_b

    def test_different_cores_different_l2(self):
        h, _ = self._hierarchy()
        assert h.path_for_pu(0)[1] is not h.path_for_pu(1)[1]

    def test_llc_shared_by_socket(self):
        h, _ = self._hierarchy()
        l3s = {id(h.path_for_pu(pu)[2]) for pu in range(8)}
        assert len(l3s) == 1

    def test_unknown_pu_raises(self):
        h, _ = self._hierarchy()
        with pytest.raises(SimulationError):
            h.path_for_pu(99)

    def test_uncontended_capacities(self):
        h, _ = self._hierarchy()
        caps = h.levels_with_capacity(0, None, 1)
        assert [c for _, c in caps] == [float(s.size) for s in NEHALEM.cache_levels]
