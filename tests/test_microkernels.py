"""Micro-kernels: analytic predictions versus the full counter stack (§2.4)."""

import pytest

from repro import Options, SimHost, TipTop
from repro.errors import WorkloadError
from repro.sim import NEHALEM, PPC970, SimMachine
from repro.sim.events import Event
from repro.sim.microkernels import (
    Instr,
    MicroKernel,
    Op,
    fig5_loop,
    periodic_jump_kernel,
    random_jump_kernel,
    streaming_kernel,
)


class TestValidation:
    def test_empty_body_rejected(self):
        with pytest.raises(WorkloadError):
            MicroKernel("x", (), 10)

    def test_bad_iterations(self):
        with pytest.raises(WorkloadError):
            MicroKernel("x", (Instr(Op.ALU),), 0)

    def test_bad_ijmp(self):
        with pytest.raises(WorkloadError):
            Instr(Op.IJMP, targets=0)
        with pytest.raises(WorkloadError):
            Instr(Op.IJMP, targets=4, pattern="chaotic")


class TestPredictions:
    def test_fig5_instruction_count(self):
        kernel = fig5_loop(iterations=1000)
        pred = kernel.predict(NEHALEM)
        assert pred[Event.INSTRUCTIONS] == 4000
        assert pred[Event.BRANCH_INSTRUCTIONS] == 1000
        assert pred[Event.BRANCH_MISSES] == 0

    def test_fig5_assists(self):
        hot = fig5_loop("x87", nonfinite=True, iterations=1000)
        assert hot.predict(NEHALEM)[Event.FP_ASSIST] == 1000
        assert hot.predict(PPC970)[Event.FP_ASSIST] == 0
        cold = fig5_loop("sse", nonfinite=True, iterations=1000)
        assert cold.predict(NEHALEM)[Event.FP_ASSIST] == 0

    def test_random_jump_mispredicts(self):
        kernel = random_jump_kernel(targets=4, iterations=1000)
        pred = kernel.predict(NEHALEM)
        # 1 - 1/4 per indirect jump; the loop branch predicts.
        assert pred[Event.BRANCH_MISSES] == pytest.approx(750)
        assert pred.mispredict_ratio == pytest.approx(0.375)

    def test_periodic_jump_predicts(self):
        kernel = periodic_jump_kernel(targets=4, iterations=1000)
        assert kernel.predict(NEHALEM)[Event.BRANCH_MISSES] == 0

    def test_streaming_misses_per_line(self):
        kernel = streaming_kernel(stride=64, iterations=1000)
        pred = kernel.predict(NEHALEM)
        assert pred[Event.LOADS] == 1000
        assert pred[Event.CACHE_MISSES] == pytest.approx(1000)  # 1 line/access

    def test_streaming_small_stride_amortises(self):
        kernel = streaming_kernel(stride=8, iterations=1000)
        # 8 accesses per 64-byte line -> 1/8 of accesses miss.
        assert kernel.predict(NEHALEM)[Event.CACHE_MISSES] == pytest.approx(125)

    def test_fitting_footprint_never_misses(self):
        kernel = streaming_kernel(footprint=1024, stride=64, iterations=1000)
        assert kernel.predict(NEHALEM)[Event.CACHE_MISSES] == 0


class TestAgainstCounters:
    """The §2.4 loop closed: run under tiptop, compare with predict()."""

    def _measure(self, kernel, events, delay=2.0):
        machine = SimMachine(NEHALEM, tick=0.5, seed=3)
        proc = machine.spawn(kernel.name, kernel.to_workload())
        backend_counts = {
            e: machine.counters.open(e, proc.pid, proc.uid) for e in events
        }
        while proc.alive:
            machine.run_for(delay)
        return {e: c.value for e, c in backend_counts.items()}

    @pytest.mark.parametrize("isa,nonfinite", [("x87", False), ("x87", True), ("sse", True)])
    def test_fig5_counts_match(self, isa, nonfinite):
        kernel = fig5_loop(isa, nonfinite=nonfinite, iterations=1e8)
        pred = kernel.predict(NEHALEM)
        events = (
            Event.INSTRUCTIONS,
            Event.BRANCH_INSTRUCTIONS,
            Event.FP_ASSIST,
            Event.FP_OPERATIONS,
        )
        measured = self._measure(kernel, events)
        for event in events:
            assert measured[event] == pytest.approx(pred[event], rel=1e-6), event

    def test_random_jump_counts_match(self):
        kernel = random_jump_kernel(targets=8, iterations=1e8)
        pred = kernel.predict(NEHALEM)
        measured = self._measure(
            kernel, (Event.INSTRUCTIONS, Event.BRANCH_MISSES)
        )
        assert measured[Event.INSTRUCTIONS] == pytest.approx(
            pred[Event.INSTRUCTIONS], rel=1e-6
        )
        assert measured[Event.BRANCH_MISSES] == pytest.approx(
            pred[Event.BRANCH_MISSES], rel=1e-3
        )

    def test_streaming_misses_match(self):
        kernel = streaming_kernel(stride=64, iterations=1e8)
        pred = kernel.predict(NEHALEM)
        measured = self._measure(
            kernel, (Event.LOADS, Event.CACHE_MISSES)
        )
        assert measured[Event.LOADS] == pytest.approx(pred[Event.LOADS], rel=1e-6)
        assert measured[Event.CACHE_MISSES] == pytest.approx(
            pred[Event.CACHE_MISSES], rel=0.02
        )

    def test_through_tiptop_screens(self):
        """The full §2.4 workflow through the tool (not raw counters)."""
        kernel = fig5_loop("x87", nonfinite=True, iterations=2e9)
        machine = SimMachine(NEHALEM, tick=0.5, seed=9)
        proc = machine.spawn("ukern", kernel.to_workload())
        from repro.core.screen import get_screen

        app = TipTop(SimHost(machine), Options(delay=2.0), get_screen("fpassist"))
        with app:
            recorder = app.run_collect(5)
        # 1 assist per 4 instructions = 25/100, the Table 1 rate.
        assert recorder.mean(proc.pid, "ASSIST") == pytest.approx(25.0, abs=0.3)
