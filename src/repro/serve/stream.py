"""Asyncio transport adapter over the length-prefixed codec.

Both ends of the link (daemon and client) speak through a
:class:`MessageStream`: reads go through the incremental
:class:`~repro.serve.protocol.MessageReader` (so a hostile or garbled
length prefix is rejected before buffering), writes are pre-encoded
payloads handed to the transport verbatim.
"""

from __future__ import annotations

import asyncio
from collections import deque

from repro.errors import WireTruncatedError
from repro.serve.protocol import MessageReader, decode_message

#: Socket read granularity. Small enough to interleave fairly between
#: clients, large enough that a typical frame arrives in one read.
_CHUNK = 1 << 16


class MessageStream:
    """One connection: framed reads, raw writes, orderly close."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._assembler = MessageReader()
        self._pending: deque[bytes] = deque()
        self.eof = False

    async def recv(self) -> tuple[int, object] | None:
        """Next decoded message as ``(msg_type, obj)``; None at clean EOF.

        Clean means the peer closed between messages. EOF arriving while
        a length prefix promised more bytes raises
        :class:`~repro.errors.WireTruncatedError` — the stream died
        mid-message and the caller must not treat it as a normal end.
        """
        while not self._pending:
            if self.eof:
                return None
            data = await self._reader.read(_CHUNK)
            if not data:
                self.eof = True
                if self._assembler.pending:
                    raise WireTruncatedError(
                        "connection closed mid-message "
                        f"({self._assembler.pending} byte(s) buffered)"
                    )
                return None
            self._pending.extend(self._assembler.feed(data))
        return decode_message(self._pending.popleft())

    def send(self, message: bytes) -> None:
        """Queue one fully-encoded message (prefix included)."""
        self._writer.write(message)

    async def drain(self) -> None:
        await self._writer.drain()

    def abort(self) -> None:
        """Sever the connection immediately, discarding queued writes.

        This is the network-partition shape of a close: no FIN
        handshake, no flush — whatever bytes were in flight are simply
        gone, exactly what a cut link does to a TCP stream. The peer
        observes a reset or a mid-message EOF, never a clean end.
        """
        self._writer.transport.abort()

    async def close(self) -> None:
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # peer already gone
            pass
