"""Tiptop itself: the top-like counter monitor.

The public surface a downstream user works with:

* :class:`repro.core.app.TipTop` — the application object; wire it to a
  :class:`~repro.core.app.SimHost` (simulated node) or
  :class:`~repro.core.app.RealHost` (live kernel with a PMU) and call
  :meth:`~repro.core.app.TipTop.run_batch`,
  :meth:`~repro.core.app.TipTop.run_collect` or
  :meth:`~repro.core.app.TipTop.run_live`.
* :mod:`repro.core.screen` — column/screen definitions (the default screen
  is Figure 1's ``PID USER %CPU Mcycle Minst IPC DMIS COMMAND``).
* :mod:`repro.core.options` — tool options mirroring tiptop's CLI.
* :mod:`repro.core.recorder` — time-series capture for offline analysis.
"""

from repro.core.app import RealHost, SimHost, TipTop
from repro.core.batchparse import BatchBlock, BatchRow, parse_blocks
from repro.core.config_file import load_screens
from repro.core.interactive import InteractiveSession
from repro.core.options import Options
from repro.core.recorder import Recorder, Sample
from repro.core.sampler import Row, Sampler, Snapshot
from repro.core.screen import Screen, builtin_screens, get_screen
from repro.core.triggers import Comparison, Trigger, TriggerSet

__all__ = [
    "BatchBlock",
    "BatchRow",
    "Comparison",
    "InteractiveSession",
    "Trigger",
    "TriggerSet",
    "Options",
    "RealHost",
    "Recorder",
    "Row",
    "Sample",
    "Sampler",
    "Screen",
    "SimHost",
    "Snapshot",
    "TipTop",
    "builtin_screens",
    "get_screen",
    "load_screens",
    "parse_blocks",
]
