"""Figure 1: the tiptop snapshot of a loaded data-center node.

Paper: eleven processes of three users on a 16-logical-core bi-Xeon E5640;
columns PID USER %CPU Mcycle Minst IPC DMIS COMMAND. IPCs range 0.66-2.36,
ten processes at ~100 %CPU and one at 43.7 %, process6 shows DMIS 0.9.
"""

import pytest
from _harness import once, save_artifact

from repro import Options, SimHost, TipTop
from repro.core.formatter import render_frame
from repro.sim.workloads import datacenter


def _run_snapshot():
    machine = datacenter.make_node(tick=0.5, seed=7)
    procs = datacenter.populate_fig1(machine)
    app = TipTop(SimHost(machine), Options(delay=10.0))
    with app:
        snapshots = []
        for i, snap in enumerate(app.snapshots()):
            snapshots.append(snap)
            if i >= 12:  # two minutes of refreshes, report the last
                break
    return app.screen, snapshots, procs


def test_fig01_snapshot(benchmark):
    screen, snapshots, procs = once(benchmark, _run_snapshot)
    snapshot = snapshots[-1]
    frame = render_frame(screen, snapshot)
    save_artifact("fig01_snapshot", frame)

    rows = {r.comm: r for r in snapshot.rows}
    assert len(snapshot.rows) == 11
    assert {r.user for r in snapshot.rows} == {"user1", "user2", "user3"}

    # Ten busy processes at ~100 %CPU, one I/O-bound at ~43.7 % (averaged
    # over the refreshes; a single 10 s window of a duty-cycled process is
    # noisy, exactly as on a real node).
    busy = [r for r in snapshot.rows if r.comm != "process11"]
    assert all(r.cpu_pct > 95.0 for r in busy)
    p11 = [
        s.row_for(rows["process11"].pid).cpu_pct
        for s in snapshots[1:]
        if s.row_for(rows["process11"].pid)
    ]
    assert sum(p11) / len(p11) == pytest.approx(43.7, abs=12.0)

    # IPC spread: the snapshot spans low (process6 at 0.66-ish) to
    # high (process4 at ~2.36); relative ordering of the extremes holds.
    assert rows["process6"].metric("IPC") < 1.0
    assert rows["process4"].metric("IPC") > 2.0
    assert rows["process4"].metric("IPC") > rows["process6"].metric("IPC")

    # DMIS: only process6 misses the LLC noticeably (paper: 0.9 vs 0.0).
    assert rows["process6"].metric("DMIS") > 0.4
    others = [r.metric("DMIS") for r in snapshot.rows if r.comm != "process6"]
    assert all(d < 0.3 for d in others)

    # The rendered frame has the Figure 1 column layout.
    header = frame.splitlines()[1]
    for col in ("PID", "USER", "%CPU", "Mcycle", "Minst", "IPC", "DMIS", "COMMAND"):
        assert col in header
