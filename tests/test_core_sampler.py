"""Sampler + process list over the simulated host."""

import math

import pytest

from repro.core.options import Options
from repro.core.sampler import Sampler
from repro.core.screen import get_screen
from repro.perf.simbackend import SimBackend
from repro.procfs.simproc import SimProcReader


def _sampler(machine, options=None, screen="default"):
    return Sampler(
        SimBackend(machine),
        SimProcReader(machine),
        get_screen(screen),
        options,
    )


class TestSampling:
    def test_first_sample_attaches_baselines(self, coarse_machine, endless_workload):
        coarse_machine.spawn("j", endless_workload)
        s = _sampler(coarse_machine)
        snap = s.sample()
        assert len(snap.rows) == 1
        assert snap.interval == 0.0

    def test_second_sample_has_deltas(self, coarse_machine, endless_workload):
        coarse_machine.spawn("j", endless_workload)
        s = _sampler(coarse_machine)
        s.sample()
        coarse_machine.run_for(5.0)
        snap = s.sample()
        row = snap.rows[0]
        assert snap.interval == pytest.approx(5.0)
        assert row.deltas["cycles"] > 0
        ipc = row.values["IPC"]
        assert 0.5 < ipc < 3.0

    def test_cpu_percent_full_load(self, coarse_machine, endless_workload):
        coarse_machine.spawn("j", endless_workload)
        s = _sampler(coarse_machine)
        s.sample()
        coarse_machine.run_for(5.0)
        row = s.sample().rows[0]
        assert row.cpu_pct == pytest.approx(100.0, abs=1.0)

    def test_new_process_discovered(self, coarse_machine, endless_workload):
        s = _sampler(coarse_machine)
        s.sample()
        coarse_machine.spawn("late", endless_workload)
        coarse_machine.run_for(2.0)
        # The refresh at the end of this sample attaches the newcomer...
        assert s.sample().rows == ()
        coarse_machine.run_for(2.0)
        # ...which contributes from the following interval on (§2.2: only
        # events after monitoring starts are observed).
        snap = s.sample()
        assert [r.comm for r in snap.rows] == ["late"]
        assert snap.rows[0].deltas["instructions"] > 0

    def test_dead_process_final_row_then_dropped(self, coarse_machine, basic_workload):
        coarse_machine.spawn("brief", basic_workload)
        s = _sampler(coarse_machine)
        s.sample()
        coarse_machine.run_for(30.0)  # workload is ~10 s
        final = s.sample()
        # The exit interval still reports the final deltas (like reading
        # the counter fd of an exited task on Linux)...
        assert len(final.rows) == 1
        assert final.rows[0].deltas["instructions"] == pytest.approx(
            basic_workload.total_instructions, rel=1e-6
        )
        # ...then the task is gone and its counters are released.
        assert coarse_machine.counters.open_count() == 0
        coarse_machine.run_for(5.0)
        assert s.sample().rows == ()

    def test_uid_filter(self, coarse_machine, endless_workload):
        coarse_machine.spawn("mine", endless_workload, uid=1000)
        coarse_machine.spawn("theirs", endless_workload, uid=1001)
        s = _sampler(coarse_machine, Options(watch_uid=1000))
        snap = s.sample()
        assert [r.comm for r in snap.rows] == ["mine"]

    def test_permission_denied_skipped_silently(self, coarse_machine, endless_workload):
        """An unprivileged monitor sees only its own processes attach."""
        coarse_machine.spawn("mine", endless_workload, uid=1001)
        coarse_machine.spawn("root-owned", endless_workload, uid=0)
        s = Sampler(
            SimBackend(coarse_machine, monitor_uid=1001),
            SimProcReader(coarse_machine),
            get_screen("default"),
        )
        snap = s.sample()
        assert [r.comm for r in snap.rows] == ["mine"]
        assert len(s.proclist.denied) == 1

    def test_sort_by_cpu_default(self, coarse_machine, endless_workload):
        coarse_machine.spawn("busy", endless_workload)
        coarse_machine.spawn("lazy", endless_workload, duty_cycle=0.3)
        s = _sampler(coarse_machine)
        s.sample()
        coarse_machine.run_for(10.0)
        snap = s.sample()
        assert snap.rows[0].comm == "busy"

    def test_sort_by_metric(self, coarse_machine, endless_workload):
        coarse_machine.spawn("a", endless_workload)
        coarse_machine.spawn("b", endless_workload)
        s = _sampler(coarse_machine, Options(sort_by="IPC"))
        s.sample()
        coarse_machine.run_for(5.0)
        snap = s.sample()
        ipcs = [r.values["IPC"] for r in snap.rows]
        assert ipcs == sorted(ipcs, reverse=True)

    def test_per_thread_mode(self, coarse_machine, endless_workload):
        coarse_machine.spawn("mt", endless_workload, nthreads=3)
        s = _sampler(coarse_machine, Options(per_thread=True))
        snap = s.sample()
        assert len(snap.rows) == 3
        assert len({r.tid for r in snap.rows}) == 3

    def test_per_process_folds_threads(self, coarse_machine, endless_workload):
        coarse_machine.spawn("mt", endless_workload, nthreads=3)
        per_proc = _sampler(coarse_machine)
        per_proc.sample()
        coarse_machine.run_for(3.0)
        row = per_proc.sample().rows[0]
        # Three threads on distinct cores: ~3x one thread's instructions.
        one_thread = row.deltas["instructions"] / 3
        assert row.deltas["instructions"] > 2.5 * one_thread

    def test_max_tasks_cap(self, coarse_machine, endless_workload):
        for i in range(6):
            coarse_machine.spawn(f"j{i}", endless_workload)
        s = _sampler(coarse_machine, Options(max_tasks=4))
        snap = s.sample()
        assert len(snap.rows) == 4

    def test_row_metric_helper(self, coarse_machine, endless_workload):
        coarse_machine.spawn("j", endless_workload)
        s = _sampler(coarse_machine)
        s.sample()
        coarse_machine.run_for(2.0)
        row = s.sample().rows[0]
        assert row.metric("IPC") == row.values["IPC"]
        assert math.isnan(row.metric("NOPE"))

    def test_snapshot_row_for(self, coarse_machine, endless_workload):
        p = coarse_machine.spawn("j", endless_workload)
        s = _sampler(coarse_machine)
        snap = s.sample()
        assert snap.row_for(p.pid) is not None
        assert snap.row_for(99999) is None

    def test_close_releases_counters(self, coarse_machine, endless_workload):
        coarse_machine.spawn("j", endless_workload)
        s = _sampler(coarse_machine)
        s.sample()
        s.close()
        assert coarse_machine.counters.open_count() == 0
