#!/usr/bin/env python3
"""Quickstart: monitor a busy node with tiptop, live and batch.

Spins up a simulated data-center node (the paper's Figure 1 population:
eleven processes, three users, one cache-missy job, one I/O-bound job),
attaches tiptop to it with *no privileges and no application changes*, and
shows both output modes plus a custom screen.

On a machine with a real PMU you would construct ``RealHost()`` instead of
``SimHost(machine)`` — every other line stays the same.

Run:  python examples/quickstart.py
"""

from repro import Options, SimHost, TipTop, get_screen, screen_from_config
from repro.sim.workloads import datacenter


def main() -> None:
    # A bi-Xeon E5640 node (2 sockets x 4 cores x 2 SMT) with Figure 1's
    # eleven processes already running. Monitoring can attach at any time:
    # let the node run for a while first.
    machine = datacenter.make_node(tick=0.5, seed=7)
    datacenter.populate_fig1(machine)
    machine.run_for(30.0)

    print("=" * 72)
    print("Live mode (one frame, default screen — the paper's Figure 1):")
    print("=" * 72)
    with TipTop(SimHost(machine), Options(delay=10.0)) as app:
        app.run_live(1, paint=print)

    print()
    print("=" * 72)
    print("Batch mode (streaming text, like top -b):")
    print("=" * 72)
    with TipTop(SimHost(machine), Options(delay=5.0)) as app:
        app.run_batch(2)

    print("=" * 72)
    print("A custom screen (tiptop screens are fully configurable):")
    print("=" * 72)
    screen = screen_from_config(
        {
            "name": "memory-view",
            "description": "IPC next to per-level miss rates",
            "columns": [
                {"header": "IPC", "expr": "instructions / cycles"},
                {"header": "L2/100", "expr": "100 * l2_misses / instructions",
                 "decimals": 1},
                {"header": "L3/100", "expr": "100 * l3_misses / instructions",
                 "decimals": 1},
            ],
        }
    )
    with TipTop(SimHost(machine), Options(delay=5.0), screen) as app:
        app.run_batch(1)

    print("Built-in screens:", ", ".join(s.name for s in
                                          __import__("repro").builtin_screens()))
    print("The 'cache' screen:", get_screen("cache").description)


if __name__ == "__main__":
    main()
