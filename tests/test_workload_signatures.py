"""Frozen metric signatures: every library workload, golden-pinned.

The golden file (``tests/data/workload_signatures.json``) holds each
workload's per-phase IPC/CPI-decomposition/miss/branch vectors rounded
to 12 significant digits. The models are pure functions, so the
comparison is *exact* — any calibration drift fails here first, with a
pointer to the regeneration command.
"""

import json
from pathlib import Path

import pytest

from repro.experiments import library, signatures
from repro.sim import NEHALEM

GOLDEN_PATH = Path(__file__).parent / "data" / "workload_signatures.json"
GOLDEN = signatures.load_golden(GOLDEN_PATH)

REGEN_HINT = (
    "metric signature drifted; if this change is deliberate, run "
    "`python -m repro.experiments --regen-signatures` and review the "
    "golden diff like any other behaviour change"
)


def test_golden_covers_the_whole_library():
    """Full suite, never cherry-picked: one signature per library name
    (SPEC gcc+icc, revolve, FP microbenchmarks, modern archetypes)."""
    assert sorted(GOLDEN["workloads"]) == sorted(library.signature_names())
    assert len(GOLDEN["workloads"]) >= 39
    assert GOLDEN["arch"] == NEHALEM.name
    assert GOLDEN["digits"] == signatures.DIGITS == 12
    assert GOLDEN["schema"] == 1


@pytest.mark.parametrize("name", library.signature_names())
def test_signature_is_frozen(name):
    """Bitwise comparison: freeze() makes both sides exact floats."""
    current = signatures.workload_signature(library.resolve(name))
    assert current == GOLDEN["workloads"][name], f"{name}: {REGEN_HINT}"


def test_golden_file_is_canonical():
    """The committed bytes are exactly what regeneration would write
    (sorted keys, two-space indent, trailing newline)."""
    assert signatures.canonical_json(GOLDEN) == GOLDEN_PATH.read_text()


def test_regeneration_is_deterministic(tmp_path):
    a = signatures.write_golden(tmp_path / "a.json").read_text()
    b = signatures.write_golden(tmp_path / "b.json").read_text()
    assert a == b == GOLDEN_PATH.read_text()


def test_freeze_rounds_to_12_significant_digits():
    assert signatures.freeze(1.23456789012345678) == 1.23456789012
    assert signatures.freeze(0.1 + 0.2) == 0.3
    assert signatures.freeze(-3.0) == -3.0
    assert signatures.freeze(0.0) == 0.0


@pytest.mark.parametrize("name", library.signature_names())
def test_signatures_are_physical(name):
    """Sanity independent of the golden: CPI components add up, IPC
    stays within the issue width, ratios stay in [0, 1]."""
    sig = GOLDEN["workloads"][name]
    assert sig["phases"], name
    for phase in sig["phases"]:
        assert 0.0 < phase["ipc"] <= NEHALEM.issue_width
        total = (
            phase["cpi_exec"] + phase["cpi_memory"]
            + phase["cpi_branch"] + phase["cpi_assist"]
        )
        assert phase["cpi"] == pytest.approx(total, rel=1e-9)
        assert phase["ipc"] == pytest.approx(1.0 / phase["cpi"], rel=1e-9)
        for key in ("l1_miss_ratio", "l2_miss_ratio", "l3_miss_ratio",
                    "mispredict_ratio", "branch_fraction"):
            assert 0.0 <= phase[key] <= 1.0, (name, phase["name"], key)


def test_compiler_variants_differ():
    """The Figure 9 point: gcc and icc builds of the same benchmark have
    distinct signatures."""
    for name in ("456.hmmer", "433.milc", "464.h264ref", "482.sphinx3"):
        assert GOLDEN["workloads"][name] != GOLDEN["workloads"][f"{name}@icc"]


def test_golden_parses_as_plain_json():
    # No NaN/Infinity smuggled in: strict JSON loads it.
    json.loads(GOLDEN_PATH.read_text(), parse_constant=lambda s: pytest.fail(s))
