"""Scheduler: fairness, core spreading, affinity, stickiness."""

import math

import pytest

from repro.sim import NEHALEM, SimMachine
from repro.sim.cpu_topology import Topology
from repro.sim.process import SimProcess, SimThread, TaskState
from repro.sim.scheduler import Scheduler
from repro.sim.workload import Workload


def _threads(n, affinity=None, nice=0):
    out = []
    for i in range(n):
        proc = SimProcess.__new__(SimProcess)
        proc.pid = 100 + i
        proc.affinity = frozenset(affinity) if affinity else None
        proc.nice = nice
        thread = SimThread(tid=100 + i, process=proc)
        out.append(thread)
    return out


@pytest.fixture
def sched():
    return Scheduler(Topology(NEHALEM, 1, 4))


class TestDispatch:
    def test_spreads_over_idle_cores_first(self, sched):
        """Four runnable threads land on four distinct physical cores."""
        threads = _threads(4)
        d = sched.dispatch(threads, 0.1)
        cores = {sched.topology.pu(pu).core_id for pu in d.assignment}
        assert len(cores) == 4

    def test_fills_smt_after_cores(self, sched):
        threads = _threads(8)
        d = sched.dispatch(threads, 0.1)
        assert len(d.assignment) == 8  # all PUs used

    def test_oversubscription_waits(self, sched):
        threads = _threads(10)
        d = sched.dispatch(threads, 0.1)
        assert len(d.assignment) == 8
        scheduled = set(d.assignment.values())
        assert sum(1 for t in threads if t in scheduled) == 8

    def test_affinity_respected(self, sched):
        threads = _threads(2, affinity={0})
        d = sched.dispatch(threads, 0.1)
        assert set(d.assignment) == {0}  # only PU0 eligible; one thread waits

    def test_same_core_pinning(self, sched):
        """The Fig. 11d setup: two tasks pinned to PU0 and PU4."""
        a = _threads(1, affinity={0})[0]
        b = _threads(1, affinity={4})[0]
        b.tid = 200
        d = sched.dispatch([a, b], 0.1)
        assert d.assignment[0] is a
        assert d.assignment[4] is b

    def test_fairness_rotates_waiters(self, sched):
        """Over many ticks, 10 threads on 8 PUs each get ~80 % of a PU."""
        threads = _threads(10)
        for _ in range(200):
            sched.dispatch(threads, 0.1)
        runs = sorted(t.vruntime for t in threads)
        assert runs[-1] - runs[0] <= 0.3  # tight spread

    def test_nice_reduces_share(self, sched):
        normal = _threads(8)
        nice = _threads(4, nice=5)
        for t in nice:
            t.tid += 1000
        allts = normal + nice
        got = {t.tid: 0 for t in allts}
        for _ in range(300):
            d = sched.dispatch(allts, 0.1)
            for t in d.assignment.values():
                got[t.tid] += 1
        avg_normal = sum(got[t.tid] for t in normal) / len(normal)
        avg_nice = sum(got[t.tid] for t in nice) / len(nice)
        assert avg_nice < avg_normal

    def test_sticky_placement(self, sched):
        threads = _threads(3)
        d1 = sched.dispatch(threads, 0.1)
        placement1 = {t.tid: pu for pu, t in d1.assignment.items()}
        d2 = sched.dispatch(threads, 0.1)
        placement2 = {t.tid: pu for pu, t in d2.assignment.items()}
        assert placement1 == placement2

    def test_context_switch_counted_once_for_steady_run(self, sched):
        t = _threads(1)[0]
        for _ in range(5):
            sched.dispatch([t], 0.1)
        assert t.context_switches == 1  # only the initial switch-in

    def test_dead_threads_ignored(self, sched):
        t = _threads(1)[0]
        t.state = TaskState.DEAD
        d = sched.dispatch([t], 0.1)
        assert not d.assignment

    def test_preempted_reported(self, sched):
        a = _threads(1, affinity={0})[0]
        sched.dispatch([a], 0.1)
        b = _threads(1, affinity={0})[0]
        b.tid = 999
        b.vruntime = -10.0  # much more deserving
        d = sched.dispatch([a, b], 0.1)
        assert d.assignment[0] is b
        assert a in d.preempted


class TestMachineScheduling:
    def test_cpu_share_with_oversubscription(self, endless_workload):
        """17 single-thread jobs on 16 PUs: average %CPU ~= 16/17."""
        m = SimMachine(NEHALEM, sockets=2, cores_per_socket=4, tick=0.25, seed=5)
        procs = [m.spawn(f"j{i}", endless_workload) for i in range(17)]
        m.run_for(60.0)
        shares = [p.cpu_time / 60.0 for p in procs]
        assert sum(shares) == pytest.approx(16.0, rel=0.02)
        assert min(shares) > 0.8  # fair: nobody starves

    def test_affinity_limits_cpu(self, endless_workload):
        m = SimMachine(NEHALEM, sockets=1, cores_per_socket=4, tick=0.25, seed=5)
        a = m.spawn("a", endless_workload, affinity={0})
        b = m.spawn("b", endless_workload, affinity={0})
        m.run_for(40.0)
        assert a.cpu_time + b.cpu_time == pytest.approx(40.0, rel=0.02)
        assert a.cpu_time == pytest.approx(20.0, rel=0.2)

    def test_duty_cycle_converges(self):
        from repro.sim.workloads import datacenter

        m = datacenter.make_node(tick=0.5, seed=3)
        wl = datacenter.compute_job("j", 1.5)
        p = m.spawn("j", wl, duty_cycle=0.437)
        m.run_for(400.0)
        assert p.cpu_time / 400.0 == pytest.approx(0.437, abs=0.05)

    def test_bad_duty_cycle_rejected(self, endless_workload):
        from repro.errors import SimulationError

        m = SimMachine(NEHALEM, tick=0.5)
        with pytest.raises(SimulationError):
            m.spawn("x", endless_workload, duty_cycle=0.0)
