"""DRAM bandwidth / latency contention model.

The paper observes (§3.4) that co-running jobs slow each other down through
the shared memory hierarchy even at 100 % CPU, and cites Moscibroda & Mutlu
on DRAM-level contention it cannot yet observe directly. We model the
memory bus as a shared resource whose effective latency grows with aggregate
demand: a standard M/D/1-flavoured inflation
``latency = base * (1 + k * u / (1 - u))`` clipped at a maximum, where ``u``
is bus utilisation from all LLC miss traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass
class MemorySystem:
    """Shared memory bus of one simulated machine.

    Attributes:
        bandwidth_bytes_per_sec: peak sustainable DRAM bandwidth.
        base_latency_cycles: uncontended access latency (from the arch).
        contention_factor: strength of queueing inflation (k above).
        max_inflation: cap on the latency multiplier.
    """

    bandwidth_bytes_per_sec: float
    base_latency_cycles: float
    contention_factor: float = 0.3
    max_inflation: float = 2.5

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_sec <= 0:
            raise SimulationError("memory bandwidth must be positive")
        if self.base_latency_cycles <= 0:
            raise SimulationError("memory latency must be positive")

    def utilisation(self, demand_bytes_per_sec: float) -> float:
        """Bus utilisation in [0, 1) for the given aggregate demand."""
        if demand_bytes_per_sec <= 0:
            return 0.0
        return min(0.98, demand_bytes_per_sec / self.bandwidth_bytes_per_sec)

    def effective_latency(self, demand_bytes_per_sec: float) -> float:
        """Latency in cycles of one memory access under contention."""
        u = self.utilisation(demand_bytes_per_sec)
        inflation = 1.0 + self.contention_factor * u / (1.0 - u)
        return self.base_latency_cycles * min(inflation, self.max_inflation)
