"""Fast-forward counts for simulation studies (§3.2).

"Many papers in computer architecture are based on simulators, and
benchmarks are run after skipping the first billion instructions or so to
avoid the initialization phase. Carefully looking at performance profiles
can help define a more accurate number of instructions for each particular
combination of architecture, compiler, and compiler flags."

Given an IPC-versus-instructions profile (Fig. 8's axes), this module finds
where the initialisation phase actually ends and recommends the skip count
— instead of everyone's folklore 10^9.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.analysis.phase_detect import detect_phases
from repro.analysis.timeseries import MetricSeries
from repro.errors import ReproError


@dataclass(frozen=True)
class FastForward:
    """A skip-count recommendation.

    Attributes:
        skip_instructions: instructions to fast-forward past.
        initialization_mean_ipc: IPC of the skipped prefix.
        steady_mean_ipc: IPC of the first post-skip phase.
        fraction_of_run: skipped fraction of the whole profile.
    """

    skip_instructions: float
    initialization_mean_ipc: float
    steady_mean_ipc: float
    fraction_of_run: float


def recommend_skip(
    profile: MetricSeries,
    *,
    window: int = 5,
    threshold: float = 0.2,
    max_fraction: float = 0.5,
) -> FastForward:
    """Recommend a fast-forward count from an IPC-vs-instructions profile.

    The skip point is the first detected phase boundary, provided it lies
    within ``max_fraction`` of the run (a boundary later than that is a
    mid-run phase change, not initialisation — skip nothing then).

    Raises:
        ReproError: profile too short to segment.
    """
    if len(profile) < 2 * window:
        raise ReproError(
            f"profile of {len(profile)} samples is too short for window {window}"
        )
    segments = detect_phases(profile, window=window, threshold=threshold)
    total = float(profile.x[-1])
    if len(segments) < 2:
        return FastForward(
            skip_instructions=0.0,
            initialization_mean_ipc=float("nan"),
            steady_mean_ipc=segments[0].mean,
            fraction_of_run=0.0,
        )
    first, second = segments[0], segments[1]
    boundary = float(profile.x[first.end_index - 1])
    if boundary / total > max_fraction:
        return FastForward(
            skip_instructions=0.0,
            initialization_mean_ipc=float("nan"),
            steady_mean_ipc=first.mean,
            fraction_of_run=0.0,
        )
    return FastForward(
        skip_instructions=boundary,
        initialization_mean_ipc=first.mean,
        steady_mean_ipc=second.mean,
        fraction_of_run=boundary / total,
    )


def compare_skips(
    profiles: dict[str, MetricSeries], **kwargs
) -> dict[str, FastForward]:
    """Per-architecture (or per-compiler) recommendations.

    §3.2's point: the right skip count differs "for each particular
    combination of architecture, compiler, and compiler flags".
    """
    return {name: recommend_skip(p, **kwargs) for name, p in profiles.items()}
