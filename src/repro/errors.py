"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro package."""


class PerfError(ReproError):
    """Base class for perf_event subsystem errors."""


class PerfNotSupportedError(PerfError):
    """The running kernel does not expose a usable perf_event PMU.

    Raised by the real syscall backend when ``perf_event_open`` fails with
    ``ENOENT``/``ENOSYS``/``EACCES`` in a way that indicates the facility is
    unavailable rather than the request being malformed.
    """


class PerfPermissionError(PerfError):
    """The caller may not monitor the requested task.

    Mirrors the paper's footnote 1: a non-privileged user can only watch
    processes they own (EPERM/EACCES from the kernel).
    """


class NoSuchTaskError(PerfError):
    """The monitored task does not exist (ESRCH)."""


class TransientPerfError(PerfError):
    """A perf operation failed in a way that is safe to retry.

    The kernel (real or simulated) reported a condition that does not
    invalidate the counter or its target — the same call may well succeed
    if reissued. Consumers (:class:`~repro.core.sampler.Sampler`,
    :class:`~repro.core.proclist.ProcessList`) retry these with a bounded
    backoff instead of dropping the task.
    """


class PerfInterruptedError(TransientPerfError):
    """A perf syscall was interrupted by a signal (EINTR)."""


class PerfBusyError(TransientPerfError):
    """The kernel asked us to try again later (EAGAIN/EBUSY)."""


class CorruptReadError(TransientPerfError):
    """A counter read returned garbage (short read / torn value).

    The fd itself is presumed healthy — a re-read usually succeeds — so
    this is classified transient; persistent corruption escalates to
    quarantine through the retry budget.
    """


class FdLimitError(PerfError):
    """The per-process or system fd table is full (EMFILE/ENFILE).

    Not a per-task denial: the attach is retried on a later refresh once
    descriptors have been released, rather than the task being blacklisted.
    """


class CounterStateError(PerfError):
    """A counter operation was issued in an invalid state.

    For example reading a closed counter, or enabling a counter whose task
    has already exited.
    """


class EventError(PerfError):
    """An event name or raw descriptor could not be resolved."""


class ExprError(ReproError):
    """A derived-column expression failed to parse or evaluate."""


class WireError(ReproError):
    """Base class for telemetry wire-protocol failures.

    Raised by :mod:`repro.serve.protocol` when bytes on the collector/
    client link cannot be produced or consumed. Every decode failure maps
    to a typed subclass so transports can distinguish "wait for more
    bytes" (:class:`WireTruncatedError` during streaming is handled by
    the reassembler, not raised) from "this peer is broken".
    """


class WireTruncatedError(WireError):
    """A message payload ended before its declared contents.

    The decoder's cursor is bounds-checked: a frame whose header promises
    more rows, columns or string bytes than the payload carries raises
    this instead of over-reading (or worse, hanging waiting for bytes
    that already went to a different field).
    """


class WireCorruptError(WireError):
    """A message failed structural validation (bad magic, bad checksum,
    undecodable compression, trailing garbage, unknown dtype tag)."""


class WireVersionError(WireError):
    """The peer speaks an unknown protocol version."""


class WireOversizeError(WireError):
    """A length prefix exceeds the protocol's message-size ceiling.

    Raised *before* any buffering of the oversized body, so a garbled or
    hostile length prefix can never make the reassembler allocate
    unbounded memory.
    """


class WireSequenceError(WireError):
    """A frame stream violated its strictly-increasing sequence contract.

    Raised by :class:`~repro.serve.client.ServeClient` when a frame
    arrives with a sequence number at or below the last one seen — a
    duplicate or reordered delivery the resume protocol must never let
    through. A *forward* gap is not this error: frames legitimately go
    missing to backpressure drops or retention aging, and the client
    counts those in ``gaps`` instead. Being a typed exception (not an
    ``assert``) the check survives ``python -O``.

    Attributes:
        expected: the lowest acceptable sequence (last seen + 1).
        actual: the sequence the peer actually sent.
    """

    def __init__(self, message: str, *, expected: int, actual: int) -> None:
        super().__init__(message)
        self.expected = expected
        self.actual = actual


class SessionError(ReproError):
    """A serve-session contract was violated (bad subscription, an
    out-of-order publish, an unknown resume point)."""


class ResumeGapError(SessionError):
    """A resume point fell off the daemon's retention ring.

    Raised by the auto-reconnecting client when the server's HELLO shows
    the oldest retained frame is newer than ``last seen + 1``: the ring
    rotated past the client while it was partitioned, so a bitwise-exact
    reassembly of the stream is no longer possible. Callers that can
    tolerate a lossy stream catch this and resubscribe without a resume
    point; callers that promised exactness must surface it.

    Attributes:
        requested: the client's last-seen sequence number.
        oldest: the oldest sequence the server still retains.
    """

    def __init__(self, message: str, *, requested: int, oldest: int) -> None:
        super().__init__(message)
        self.requested = requested
        self.oldest = oldest


class ConfigError(ReproError):
    """Invalid screen/column/option configuration."""


class ExperimentError(ConfigError):
    """An experiment spec failed to parse or validate.

    Raised by :mod:`repro.experiments` for malformed spec files, unknown
    keys, out-of-range values or unresolvable workload references. The
    CLI maps it (like every :class:`ConfigError`) to exit status 2.
    """


class ProcfsError(ReproError):
    """A /proc read or parse failed."""


class SimulationError(ReproError):
    """Invalid simulated-machine configuration or operation."""


class WorkloadError(SimulationError):
    """Invalid workload or phase description."""


class WorkerFailure(SimulationError):
    """A grid worker process failed its round-trip contract.

    Raised by the sharded engines when a worker crashes (pipe closed,
    process exited), misses its epoch deadline (hang), replies with a
    message that does not parse as an epoch report (garbled), is cut off
    by a network partition while possibly still alive (unreachable —
    the supervisor must fence, not double-apply), or is spoken to after
    the transport was deliberately shut down (closed — e.g. a send
    racing :meth:`close` during interpreter teardown). The supervised
    engine catches this internally and recovers; the unsupervised
    :class:`~repro.sim.parallel.ShardedEngine` lets it propagate instead
    of leaking a raw ``EOFError``/``BrokenPipeError``.

    ``"unreachable"`` is deliberately distinct from ``"crash"``: a
    partitioned worker may be slow-but-alive, so its late replies carry
    a stale incarnation fence and are rejected rather than merged.

    Attributes:
        worker: index of the failing worker.
        kind: one of ``"crash"``, ``"hang"``, ``"garbled"``,
            ``"unreachable"``, ``"closed"``.
        exitcode: the worker's exit code, when known.
    """

    def __init__(
        self,
        message: str,
        *,
        worker: int,
        kind: str,
        exitcode: int | None = None,
    ) -> None:
        super().__init__(message)
        self.worker = worker
        self.kind = kind
        self.exitcode = exitcode
