"""TipTop application: hosts, batch/live/collect modes, CLI."""

import pytest

from repro import Options, SimHost, TipTop
from repro.core.cli import main
from repro.core.formatter import (
    render_batch,
    render_csv_header,
    render_csv_row,
    render_frame,
)
from repro.core.recorder import Recorder
from repro.core.screen import get_screen
from repro.errors import PerfNotSupportedError
from repro.perf.syscall import kernel_supports_perf_events


@pytest.fixture
def busy_host(coarse_machine, endless_workload):
    coarse_machine.spawn("alpha", endless_workload, user="ann")
    coarse_machine.spawn("beta", endless_workload, user="bob")
    return SimHost(coarse_machine)


class TestBatchMode:
    def test_blocks_emitted(self, busy_host):
        with TipTop(busy_host, Options(delay=2.0)) as app:
            blocks = app.run_batch(3, write=lambda s: None)
        assert len(blocks) == 3
        for block in blocks:
            assert block.startswith("--- t=")
            assert "PID" in block and "IPC" in block
            assert "alpha" in block and "beta" in block

    def test_sleep_advances_virtual_clock(self, busy_host):
        with TipTop(busy_host, Options(delay=5.0)) as app:
            app.run_batch(2, write=lambda s: None)
        assert busy_host.machine.now == pytest.approx(10.0)


class TestLiveMode:
    def test_frames_have_summary_line(self, busy_host):
        with TipTop(busy_host, Options(delay=1.0)) as app:
            frames = app.run_live(2, paint=lambda s: None)
        assert len(frames) == 2
        assert frames[0].startswith("tiptop - up ")
        assert "2 tasks" in frames[0]

    def test_idle_threshold_hides_rows(self, coarse_machine, endless_workload):
        coarse_machine.spawn("busy", endless_workload)
        coarse_machine.spawn("idle-ish", endless_workload, duty_cycle=0.2)
        host = SimHost(coarse_machine)
        with TipTop(host, Options(delay=10.0, idle_threshold=60.0)) as app:
            frames = app.run_live(1, paint=lambda s: None)
        assert "busy" in frames[0]
        assert "idle-ish" not in frames[0]


class TestCollect:
    def test_recorder_filled(self, busy_host):
        with TipTop(busy_host, Options(delay=2.0)) as app:
            recorder = app.run_collect(4)
        assert len(recorder.pids()) == 2
        pid = recorder.pids()[0]
        times, values = recorder.series(pid, "IPC")
        assert len(times) == 4

    def test_custom_screen(self, busy_host):
        screen = get_screen("cache")
        with TipTop(busy_host, Options(delay=2.0), screen) as app:
            recorder = app.run_collect(2)
        sample = recorder.samples[0]
        assert "L3MIS" in sample.values


class TestFormatters:
    def test_batch_vs_frame(self, busy_host):
        with TipTop(busy_host, Options(delay=1.0)) as app:
            snaps = list(app.snapshots(1))
        screen = app.screen
        batch = render_batch(screen, snaps[1])
        frame = render_frame(screen, snaps[1])
        assert batch.splitlines()[0].startswith("---")
        assert frame.splitlines()[0].startswith("tiptop")

    def test_csv_roundtrip(self, busy_host):
        with TipTop(busy_host, Options(delay=1.0)) as app:
            snaps = list(app.snapshots(1))
        screen = app.screen
        header = render_csv_header(screen)
        row = render_csv_row(screen, snaps[1], snaps[1].rows[0])
        assert header.count(",") == row.count(",")
        assert header.startswith("time,PID,")


class TestRecorder:
    def test_series_vs_instructions(self, busy_host):
        with TipTop(busy_host, Options(delay=2.0)) as app:
            rec = app.run_collect(3)
        pid = rec.pids()[0]
        xs, ys = rec.series_vs_instructions(pid, "IPC")
        assert len(xs) == 3
        assert all(b > a for a, b in zip(xs, xs[1:]))  # monotone instructions

    def test_mean_and_total(self, busy_host):
        with TipTop(busy_host, Options(delay=2.0)) as app:
            rec = app.run_collect(3)
        pid = rec.pids()[0]
        assert rec.mean(pid, "IPC") > 0
        assert rec.total_delta(pid, "instructions") > 0

    def test_for_command(self, busy_host):
        with TipTop(busy_host, Options(delay=2.0)) as app:
            rec = app.run_collect(2)
        assert len(rec.for_command("alpha")) == 2

    def test_empty_mean_is_nan(self):
        import math

        assert math.isnan(Recorder().mean(1, "IPC"))


class TestRealHost:
    def test_realhost_raises_without_pmu(self):
        if kernel_supports_perf_events():
            pytest.skip("host has a PMU")
        from repro.core.app import RealHost

        with pytest.raises(PerfNotSupportedError):
            RealHost()


class TestCli:
    def test_list_screens(self, capsys):
        assert main(["--list-screens"]) == 0
        out = capsys.readouterr().out
        assert "default" in out and "fpassist" in out

    def test_sim_batch_run(self, capsys):
        assert main(["--sim", "-b", "-d", "2", "-n", "2"]) == 0
        out = capsys.readouterr().out
        assert "process1" in out
        assert out.count("--- t=") == 2

    def test_sim_live_run(self, capsys):
        assert main(["--sim", "-n", "1", "-d", "1"]) == 0
        assert "tiptop - up" in capsys.readouterr().out

    def test_real_host_error_path(self, capsys):
        if kernel_supports_perf_events():
            pytest.skip("host has a PMU")
        assert main(["-b", "-n", "1"]) == 2
        assert "--sim" in capsys.readouterr().err

    def test_screen_selection(self, capsys):
        assert main(["--sim", "-b", "-n", "1", "-S", "cache"]) == 0
        assert "L2MIS" in capsys.readouterr().out

    def test_bad_screen(self, capsys):
        assert main(["--sim", "-b", "-n", "1", "-S", "nope"]) == 1
