"""Offline analysis of recorded metric streams.

What the paper does *by eye* on its figures — spotting the phase transition
at step 953, the h264ref compiler inversion, the co-run IPC drop — this
package does programmatically: time-series utilities, change-point
detection, interference quantification, and the §2.4 validation comparison.
"""

from repro.analysis.compare import RunComparison, compare_runs
from repro.analysis.fastforward import FastForward, compare_skips, recommend_skip
from repro.analysis.interference import corun_slowdown, overlap_window
from repro.analysis.phase_detect import PhaseSegment, detect_phases, transition_points
from repro.analysis.roofline import (
    MachineRoofline,
    RooflinePoint,
    machine_roofline,
    point_from_deltas,
    select_processor,
)
from repro.analysis.timeseries import MetricSeries
from repro.analysis.validation import ValidationReport, compare_counts

__all__ = [
    "FastForward",
    "MachineRoofline",
    "MetricSeries",
    "PhaseSegment",
    "RunComparison",
    "compare_runs",
    "compare_skips",
    "recommend_skip",
    "RooflinePoint",
    "ValidationReport",
    "compare_counts",
    "corun_slowdown",
    "detect_phases",
    "machine_roofline",
    "overlap_window",
    "point_from_deltas",
    "select_processor",
    "transition_points",
]
