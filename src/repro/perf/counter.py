"""High-level counter objects over a perf backend.

:class:`Counter` owns one open counter on one task and knows how to read
*scaled deltas*: tiptop samples at coarse intervals and displays the number
of events since the last refresh (§2.3), scaling by
``time_enabled / time_running`` when the kernel multiplexed the counter off
the PMU part of the time. :class:`CounterGroup` bundles the counters of one
task (one per event of interest) behind a single ``read_deltas`` call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.errors import CounterStateError, PerfError
from repro.perf.events import EventSpec


@dataclass(frozen=True)
class Reading:
    """One raw counter read: value plus the kernel's two clocks."""

    value: int
    time_enabled: float
    time_running: float


class Backend(Protocol):
    """The kernel-facing surface both backends implement.

    Handles are opaque integers (file descriptors for the real kernel).
    """

    def open(
        self,
        event: EventSpec,
        tid: int,
        *,
        inherit: bool = False,
        sample_period: int | None = None,
    ) -> int:
        """Open a counter on task ``tid``; returns a handle.

        ``sample_period`` selects sampling mode (statistical, §2.5) instead
        of the default exact counting.

        Raises:
            NoSuchTaskError: dead/unknown task.
            PerfPermissionError: caller may not monitor that task.
            PerfNotSupportedError: no usable PMU.
        """
        ...

    def read(self, handle: int) -> Reading:
        """Read a counter (value, time_enabled, time_running)."""
        ...

    def enable(self, handle: int) -> None:
        """Arm the counter (ioctl ENABLE)."""
        ...

    def disable(self, handle: int) -> None:
        """Disarm the counter (ioctl DISABLE)."""
        ...

    def reset(self, handle: int) -> None:
        """Zero the counter value (ioctl RESET)."""
        ...

    def close(self, handle: int) -> None:
        """Release the handle."""
        ...


class Counter:
    """One event on one task, with delta reads.

    Args:
        backend: the kernel backend.
        event: resolved event spec.
        tid: target task id.
        inherit: count the task's (future) children/threads too.
        sample_period: open in sampling mode with this period (default:
            exact counting, which is what tiptop uses — §2.5).
    """

    def __init__(
        self,
        backend: Backend,
        event: EventSpec,
        tid: int,
        *,
        inherit: bool = False,
        sample_period: int | None = None,
    ) -> None:
        self.backend = backend
        self.event = event
        self.tid = tid
        self.sample_period = sample_period
        self._handle: int | None = backend.open(
            event, tid, inherit=inherit, sample_period=sample_period
        )
        self._last = Reading(0, 0.0, 0.0)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._handle is None

    def _require_handle(self) -> int:
        if self._handle is None:
            raise CounterStateError(f"counter for {self.event.name} is closed")
        return self._handle

    def read(self) -> Reading:
        """Raw cumulative reading (does not move the delta baseline)."""
        return self.backend.read(self._require_handle())

    def delta(self) -> float:
        """Scaled event count since the previous ``delta()`` call.

        When the counter was multiplexed (ran for only part of the enabled
        time), the delta is extrapolated by ``d_enabled / d_running`` — the
        standard perf scaling. Returns 0.0 for an interval in which the
        counter never ran.
        """
        return self._delta_from(self.read())

    def _delta_from(self, now: Reading) -> float:
        """Fold one raw reading into the delta baseline (shared by the
        per-counter and batched read paths)."""
        d_value = now.value - self._last.value
        d_enabled = now.time_enabled - self._last.time_enabled
        d_running = now.time_running - self._last.time_running
        self._last = now
        if d_running <= 0:
            return 0.0
        return d_value * (d_enabled / d_running)

    def enable(self) -> None:
        """Arm the counter."""
        self.backend.enable(self._require_handle())

    def disable(self) -> None:
        """Disarm the counter."""
        self.backend.disable(self._require_handle())

    def reset(self) -> None:
        """Zero the kernel value and the delta baseline."""
        self.backend.reset(self._require_handle())
        self._last = Reading(0, self._last.time_enabled, self._last.time_running)

    def close(self) -> None:
        """Release the kernel handle (idempotent).

        The handle is forgotten *before* the backend call returns: even
        when ``close`` itself fails (an interrupted ``close(2)`` still
        releases the fd on Linux, and both backends mirror that), the
        counter never retains a handle it might double-close or leak.
        """
        if self._handle is not None:
            handle, self._handle = self._handle, None
            self.backend.close(handle)

    def __enter__(self) -> "Counter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class CounterGroup:
    """All monitored events of one task.

    Args:
        backend: the kernel backend.
        events: resolved event specs (order preserved).
        tid: target task id.
        inherit: per-process counting (fold in all the task's threads).
    """

    def __init__(
        self,
        backend: Backend,
        events: list[EventSpec],
        tid: int,
        *,
        inherit: bool = False,
    ) -> None:
        self.tid = tid
        self.counters: list[Counter] = []
        try:
            for event in events:
                self.counters.append(
                    Counter(backend, event, tid, inherit=inherit)
                )
        except Exception:
            # Partial open: if event k of n failed, release the k-1
            # already-open handles before the error propagates — a group
            # either exists fully or not at all.
            self.close()
            raise

    def read_deltas(self) -> dict[str, float]:
        """Scaled deltas for every event, keyed by event name.

        Uses the backend's batched ``read_many`` when it offers one (the
        sim backend does), reading the whole group in a single call; the
        per-event delta math is the same either way.

        Both paths are two-phase: every counter is read *before* any
        delta baseline moves. A read that fails mid-group (EINTR on
        counter k of n) therefore leaves all n baselines untouched, and a
        retry of the whole group reproduces exactly what a batched read
        would have returned — previously the sequential path folded
        baselines as it went, so counters before the faulting one
        silently lost their interval on retry.
        """
        if self.counters:
            read_many = getattr(self.counters[0].backend, "read_many", None)
            if read_many is not None:
                handles = [c._require_handle() for c in self.counters]
                readings = read_many(handles)
            else:
                readings = [c.read() for c in self.counters]
            return {
                c.event.name: c._delta_from(r)
                for c, r in zip(self.counters, readings)
            }
        return {}

    def enable(self) -> None:
        """Arm every counter."""
        for c in self.counters:
            c.enable()

    def disable(self) -> None:
        """Disarm every counter."""
        for c in self.counters:
            c.disable()

    def close(self) -> None:
        """Release every handle (idempotent, exception-safe).

        A failing close of one counter (stale handle, injected EINTR)
        must not strand the remaining handles, so per-counter perf errors
        are swallowed; the underlying fd is released either way (both
        backends release before raising, as ``close(2)`` does).
        """
        for c in self.counters:
            try:
                c.close()
            except PerfError:
                pass

    def __enter__(self) -> "CounterGroup":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
