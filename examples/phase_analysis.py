#!/usr/bin/env python3
"""Phase analysis: diagnose the biologists' R algorithm (paper §3.1).

The scenario: an iterative algorithm "feels slow". %CPU says 100 % — no
visible reason for concern. Tiptop's IPC column tells a different story:
after ~950 time steps the IPC collapses from ~1.0 to ~0.03 while the new
FP-assist column lights up — the matrices filled with Inf/NaN and every
x87 operation takes a micro-code assist. Clipping the values fixes it.

This example runs a 1/50-scale version of the Figure 3 experiment, detects
the transition automatically, and verifies the fix.

Run:  python examples/phase_analysis.py
"""

from repro import Options, SimHost, TipTop
from repro.analysis.phase_detect import detect_phases
from repro.core.phases import pid_metric_series
from repro.core.screen import get_screen
from repro.sim import NEHALEM, SimMachine
from repro.sim.workload import Workload
from repro.sim.workloads import revolve

SCALE = 50  # shrink the 4.6-hour run for a quick demo


def scaled(workload: Workload) -> Workload:
    return Workload(
        workload.name,
        tuple(p.with_budget(p.instructions / SCALE) for p in workload.phases),
    )


def run(workload: Workload, label: str) -> None:
    machine = SimMachine(NEHALEM, tick=0.5, seed=42)
    proc = machine.spawn("R", workload, user="biologist")
    app = TipTop(SimHost(machine), Options(delay=2.0), get_screen("fpassist"))
    recorder = app.run_collect(0)
    with app:
        for i, snap in enumerate(app.snapshots()):
            if i > 0:
                recorder.record(snap)
            if not proc.alive:
                break

    ipc = pid_metric_series(recorder, proc.pid, "IPC")
    assists = pid_metric_series(recorder, proc.pid, "ASSIST")
    print(f"--- {label} ---")
    print(f"run time: {ipc.x[-1]:.0f} virtual seconds, {len(ipc)} samples")
    print(ipc.ascii_plot(width=64, height=9))

    segments = detect_phases(ipc, window=8, threshold=0.5)
    if len(segments) == 1:
        print("no phase change detected: the algorithm is healthy\n")
        return
    print(f"detected {len(segments)} phases:")
    for seg in segments:
        window = assists.y[seg.start_index : seg.end_index]
        mean_assist = float(window.mean()) if len(window) else 0.0
        print(
            f"  t={seg.start_x:7.0f}..{seg.end_x:7.0f}s  mean IPC {seg.mean:5.2f}  "
            f"FP assists/100 instr {mean_assist:5.1f}"
        )
    print(
        "diagnosis: the IPC collapse coincides with micro-code FP assists —\n"
        "non-finite values crept into the computation (paper §3.1)\n"
    )


def main() -> None:
    run(scaled(revolve.original()), "original algorithm (Nehalem)")
    run(scaled(revolve.clipped()), "with value clipping (the fix)")


if __name__ == "__main__":
    main()
