"""Recorder edge cases: empty recordings, all-quarantined frames, legacy
CSV, and the chaos HEALTH column's round trip."""

from __future__ import annotations

import math

from repro.core import formatter
from repro.core.columns import HEALTH_COLUMN
from repro.core.recorder import Recorder
from repro.core.sampler import Sampler
from repro.core.screen import get_screen
from repro.perf.faults import FaultPlan, FaultSpec
from repro.perf.simbackend import SimBackend
from repro.procfs.simproc import SimProcReader


class TestEmptyRecording:
    def test_empty_round_trip(self):
        recorder = Recorder()
        text = recorder.to_csv()
        back = Recorder.from_csv(text)
        assert back.frames == []
        assert back.samples == []
        assert back.pids() == []

    def test_empty_text_round_trip(self):
        assert Recorder.from_csv("").frames == []

    def test_series_on_empty_recording(self):
        times, values = Recorder().series(1234, "IPC")
        assert len(times) == 0
        assert len(values) == 0
        assert math.isnan(Recorder().mean(1234, "IPC"))


class TestAllTasksQuarantined:
    def make_sampler(self, machine, workload):
        machine.spawn("a", workload)
        machine.spawn("b", workload)
        faults = FaultPlan(0, [FaultSpec("read", "esrch", 1.0)])
        backend = SimBackend(machine, faults=faults)
        screen = get_screen("default").with_columns(HEALTH_COLUMN)
        return Sampler(backend, SimProcReader(machine), screen)

    def test_empty_frame_records_renders_and_round_trips(
        self, coarse_machine, endless_workload
    ):
        sampler = self.make_sampler(coarse_machine, endless_workload)
        sampler.sample()
        coarse_machine.run_for(2.0)
        snap = sampler.sample()
        assert len(snap.rows) == 0
        assert set(sampler.proclist.health_report().values()) <= {
            "quarantined",
            "reattached",
        }
        # The empty frame must render (batch header, no rows)...
        block = formatter.render_batch(sampler.screen, snap)
        assert "PID" in block
        # ...and recording it is a no-op, not a corruption.
        recorder = Recorder()
        recorder.record(snap)
        assert recorder.frames == []
        back = Recorder.from_csv(recorder.to_csv())
        assert back.frames == []
        sampler.close()

    def test_mixed_recording_skips_only_empty_frames(
        self, coarse_machine, endless_workload
    ):
        sampler = self.make_sampler(coarse_machine, endless_workload)
        recorder = Recorder()
        sampler.sample()
        for _ in range(4):
            coarse_machine.run_for(2.0)
            recorder.record(sampler.sample())
        # esrch fires on every read: only reattached-then-benched cycles,
        # so some frames are empty; the recorder keeps the others intact.
        assert all(len(f) > 0 for f in recorder.frames)
        back = Recorder.from_csv(recorder.to_csv())
        assert len(back.frames) == len(recorder.frames)
        sampler.close()


class TestLegacyCsv:
    LEGACY = (
        "time,pid,comm,user,cpu_pct,instructions\n"
        "5.0,100,vim,alice,12.5,1000000.0\n"
        "5.0,101,cc1,bob,99.0,2000000.0\n"
        "10.0,100,vim,alice,10.0,1500000.0\n"
    )

    def test_legacy_six_column_csv_parses(self):
        recorder = Recorder.from_csv(self.LEGACY)
        assert recorder.pids() == [100, 101]
        assert len(recorder.frames) == 2  # grouped by timestamp
        samples = recorder.for_pid(100)
        assert [s.time for s in samples] == [5.0, 10.0]
        assert samples[0].deltas == {"instructions": 1000000.0}
        assert samples[0].user == "alice"
        assert recorder.total_delta(100, "instructions") == 2500000.0

    def test_legacy_csv_re_serialises(self):
        recorder = Recorder.from_csv(self.LEGACY)
        back = Recorder.from_csv(recorder.to_csv())
        assert back.pids() == recorder.pids()
        assert back.total_delta(101, "instructions") == 2000000.0


class TestHealthColumnRoundTrip:
    def test_health_labels_survive_csv(self, coarse_machine, endless_workload):
        coarse_machine.spawn("a", endless_workload)
        backend = SimBackend(coarse_machine, faults=FaultPlan(3))
        screen = get_screen("default").with_columns(HEALTH_COLUMN)
        sampler = Sampler(backend, SimProcReader(coarse_machine), screen)
        recorder = Recorder()
        sampler.sample()
        coarse_machine.run_for(2.0)
        recorder.record(sampler.sample())
        sampler.close()
        [frame] = recorder.frames
        assert frame.labels["HEALTH"] == ("ok",)
        back = Recorder.from_csv(recorder.to_csv())
        [rebuilt] = back.frames
        assert rebuilt.labels["HEALTH"] == ("ok",)
        assert ("HEALTH", "health") in rebuilt.columns
        assert rebuilt.value_at("HEALTH", "health", 0) == "ok"
