"""Supervision tree for the sharded grid: detect, restart, adopt, degrade.

The contract under test: a SIGKILLed, hung or garbling worker never
deadlocks and never aborts ``Grid.run_for`` — the supervisor restarts the
worker and resurrects its shard from the epoch journal (bitwise-equal to
a never-crashed run), adopts poison shards in-process, and degrades the
whole engine to serial semantics when the restart budget runs out. Chaos
schedules (:class:`GridFaultPlan`) are pure functions of their seed, so
``--grid-chaos SEED`` runs replay byte-identically, event log included.
"""

import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.core.cli import main
from repro.errors import ConfigError, SimulationError, WorkerFailure
from repro.sim.grid import Grid, NodeSpec, QueueSpec
from repro.sim.parallel import create_engine
from repro.sim.supervisor import (
    CRASH_EXIT,
    GridFaultPlan,
    GridFaultSpec,
    Supervision,
    default_grid_specs,
)
from repro.sim.workloads import datacenter

GiB = 1024**3

#: Fast supervision for tests: tight deadline, no backoff sleeps.
FAST = Supervision(deadline=0.5, backoff_base=0.0)


def _job(seconds, name="job", ipc=1.0):
    return datacenter.compute_job(name, ipc, duration_hint=seconds)


def _endless(name="svc"):
    return datacenter.compute_job(name, 1.2)


def _fleet():
    return [
        NodeSpec(name="a0", sockets=1, cores_per_socket=1, memory_bytes=4 * GiB),
        NodeSpec(name="a1", sockets=1, cores_per_socket=2, memory_bytes=4 * GiB),
        NodeSpec(name="a2", sockets=1, cores_per_socket=1, memory_bytes=4 * GiB),
    ]


def _queues():
    return [
        QueueSpec("quick", max_wallclock=6.0, memory_limit=2 * GiB, priority=2),
        QueueSpec("slow", max_wallclock=float("inf"), memory_limit=4 * GiB,
                  priority=1),
    ]


def _script(grid, pause=None):
    """Over-subscribe the fleet so exits/kills force several dispatch
    epochs — chaos at epoch N is meaningless unless epoch N exists.
    ``pause`` (if given) runs between the first and second run_for, i.e.
    between epochs — the hook the SIGKILL tests use."""
    grid.submit("svc0", _endless("svc0"), queue="quick", memory_bytes=GiB)
    grid.submit("svc1", _endless("svc1"), queue="quick", memory_bytes=GiB)
    for i, secs in enumerate([3.0, 5.0, 8.0, 4.0]):
        grid.submit(f"j{i}", _job(secs, name=f"j{i}"), queue="slow",
                    memory_bytes=GiB)
    grid.run_for(4.0)
    if pause is not None:
        pause(grid)
    grid.submit("late", _job(6.0, name="late"), queue="slow",
                memory_bytes=GiB)
    grid.run_for(8.5)
    grid.run_for(3.0)


def _run(engine, workers, *, chaos=None, supervision=None, pause=None):
    """One scripted run; returns (digest, events, supervisor stats)."""
    grid = Grid(_fleet(), _queues(), tick=1.0, seed=7, workers=workers,
                engine=engine, grid_chaos=chaos, supervision=supervision)
    try:
        _script(grid, pause=pause)
        stats = dict(getattr(grid.engine, "stats", {}))
        return grid.conformance_digest(), grid.supervisor_events, stats
    finally:
        grid.close()


def _kinds(events):
    return [e["event"] for e in events]


@pytest.fixture(scope="module")
def serial_digest():
    digest, events, _ = _run("serial", 1)
    assert events == []
    return digest


def _plan(*specs, seed=0):
    return GridFaultPlan(seed=seed, specs=tuple(specs))


def _assert_no_children():
    # active_children() joins exited processes as a side effect; a short
    # grace window absorbs the OS reaping a freshly-SIGKILLed child.
    for _ in range(50):
        if not multiprocessing.active_children():
            return
        time.sleep(0.02)
    assert multiprocessing.active_children() == []


class TestGridFaultPlan:
    def test_decide_is_a_pure_function_of_the_seed(self):
        a = GridFaultPlan.from_seed(3, intensity=8.0)
        b = GridFaultPlan.from_seed(3, intensity=8.0)
        grid = [(w, e, i) for w in range(3) for e in range(40)
                for i in range(2)]
        assert [a.decide(*k) for k in grid] == [b.decide(*k) for k in grid]

    def test_exact_epoch_fires_on_first_incarnation_only(self):
        plan = _plan(GridFaultSpec("crash", at_epochs={5}))
        assert plan.decide(0, 5, 0) == "crash"
        assert plan.decide(0, 5, 1) is None  # the restarted retry succeeds
        assert plan.decide(0, 4, 0) is None

    def test_persistent_epoch_refires_every_incarnation(self):
        plan = _plan(GridFaultSpec("crash", at_epochs={2}, persistent=True))
        assert all(plan.decide(1, 2, i) == "crash" for i in range(4))

    def test_worker_targeting(self):
        plan = _plan(GridFaultSpec("hang", at_epochs={0}, worker=1))
        assert plan.decide(1, 0, 0) == "hang"
        assert plan.decide(0, 0, 0) is None

    def test_rate_specs_partition_the_unit_interval(self):
        plan = _plan(
            GridFaultSpec("crash", rate=0.5), GridFaultSpec("garble", rate=0.5)
        )
        decisions = {plan.decide(0, e, 0) for e in range(200)}
        assert decisions == {"crash", "garble"}  # never None at total rate 1

    def test_zero_intensity_is_silent(self):
        plan = GridFaultPlan.from_seed(9, intensity=0.0)
        assert all(
            plan.decide(w, e, 0) is None for w in range(2) for e in range(100)
        )

    def test_default_specs_rates_are_capped(self):
        for spec in default_grid_specs(intensity=1e9):
            assert spec.rate <= 1.0 / 3.0

    def test_spec_validation(self):
        with pytest.raises(ConfigError):
            GridFaultSpec("explode")
        with pytest.raises(ConfigError):
            GridFaultSpec("crash", rate=1.5)
        with pytest.raises(ConfigError):
            GridFaultSpec("crash", at_epochs={-1})
        with pytest.raises(ConfigError):
            GridFaultSpec("crash", worker=-1)
        with pytest.raises(ConfigError):
            default_grid_specs(intensity=-1.0)

    def test_supervision_validation(self):
        with pytest.raises(ConfigError):
            Supervision(deadline=0.0)
        with pytest.raises(ConfigError):
            Supervision(restart_budget=-1)
        with pytest.raises(ConfigError):
            Supervision(poison_limit=0)
        with pytest.raises(ConfigError):
            Supervision(backoff_base=-0.1)

    def test_chaos_requires_the_supervised_engine(self):
        with pytest.raises(SimulationError):
            create_engine("sharded", _fleet(), 1.0, 7, 2,
                          chaos=GridFaultPlan.from_seed(1))
        with pytest.raises(SimulationError):
            create_engine("serial", _fleet(), 1.0, 7, 1, supervision=FAST)

    def test_grid_chaos_implies_supervised_engine(self):
        with Grid(_fleet(), _queues(), tick=1.0, seed=7,
                  grid_chaos=3) as grid:
            assert grid.engine.name == "supervised"


class TestCrashRecovery:
    def test_sigkill_between_epochs_recovers_bitwise(self, serial_digest):
        def pause(grid):
            os.kill(grid.engine._procs[0].pid, signal.SIGKILL)
            time.sleep(0.05)

        digest, events, stats = _run("supervised", 2, supervision=FAST,
                                     pause=pause)
        assert digest == serial_digest
        assert "crash" in _kinds(events)
        assert "restart" in _kinds(events)
        assert stats["restarts"] >= 1
        assert stats["replayed_epochs"] >= 1
        _assert_no_children()

    def test_sigkill_mid_advance_recovers_bitwise(self):
        """A worker murdered *while computing* an epoch: the kill lands
        asynchronously during a long run_for, so it may hit mid-advance
        or between round-trips — recovery must be exact either way. The
        script is epoch-heavy (one submit + run per loop) so the run is
        long enough that the timer always lands inside it."""
        def busy(grid, pause=None):
            for i, secs in enumerate([3.0, 5.0, 4.0]):
                grid.submit(f"j{i}", _job(secs, name=f"j{i}"), queue="slow",
                            memory_bytes=GiB)
            grid.run_for(2.0)
            if pause is not None:
                pause(grid)
            for i in range(24):
                grid.submit(f"w{i}", _job(2.0 + i % 3, name=f"w{i}"),
                            queue="slow", memory_bytes=GiB)
                grid.run_for(1.5)

        def kill_quietly(pid):
            try:
                os.kill(pid, signal.SIGKILL)
            except ProcessLookupError:  # pragma: no cover - lost the race
                pass

        def pause(grid):
            pid = grid.engine._procs[0].pid
            threading.Timer(0.01, kill_quietly, args=(pid,)).start()

        results = {}
        for engine, workers, hook in [("serial", 1, None),
                                      ("supervised", 2, pause)]:
            grid = Grid(_fleet(), _queues(), tick=1.0, seed=7,
                        workers=workers, engine=engine, supervision=FAST
                        if engine == "supervised" else None)
            try:
                busy(grid, pause=hook)
                stats = dict(getattr(grid.engine, "stats", {}))
                results[engine] = grid.conformance_digest()
            finally:
                grid.close()
        assert results["supervised"] == results["serial"]
        assert stats["failures"]["crash"] >= 1
        _assert_no_children()

    def test_chaos_crash_replays_journal_exactly(self, serial_digest):
        plan = _plan(GridFaultSpec("crash", at_epochs={0, 2}, worker=0),
                     GridFaultSpec("garble", at_epochs={1}, worker=1))
        digest, events, stats = _run("supervised", 2, chaos=plan,
                                     supervision=FAST)
        assert digest == serial_digest
        assert stats["failures"]["crash"] >= 1
        assert stats["failures"]["garbled"] >= 1
        assert stats["restarts"] >= 2
        assert not stats["degraded"]

    @pytest.mark.parametrize("chaos_seed", [1, 2, 3, 4, 5, 11])
    def test_multi_seed_chaos_sweep_matches_serial(self, chaos_seed,
                                                   serial_digest):
        plan = _plan(
            GridFaultSpec("crash", rate=0.25),
            GridFaultSpec("garble", rate=0.20),
            GridFaultSpec("hang", rate=0.04),
            seed=chaos_seed,
        )
        digest, _, _ = _run("supervised", 2, chaos=plan, supervision=FAST)
        assert digest == serial_digest
        _assert_no_children()

    def test_chaos_replay_is_byte_identical(self):
        plan = GridFaultPlan.from_seed(3, intensity=8.0)
        runs = [_run("supervised", 2, chaos=plan, supervision=FAST)
                for _ in range(2)]
        assert runs[0][0] == runs[1][0]  # digests
        assert runs[0][1] == runs[1][1]  # event logs, field for field
        assert runs[0][2] == runs[1][2]  # supervisor stats


class TestHangAndGarble:
    def test_hang_detected_by_deadline_and_recovered(self, serial_digest):
        plan = _plan(GridFaultSpec("hang", at_epochs={0}, worker=1))
        digest, events, stats = _run("supervised", 2, chaos=plan,
                                     supervision=FAST)
        assert digest == serial_digest
        assert _kinds(events)[:2] == ["hang", "restart"]
        assert stats["failures"]["hang"] == 1
        _assert_no_children()  # the SIGTERM-immune hanger was SIGKILLed

    def test_garbled_reply_is_rejected_and_recovered(self, serial_digest):
        plan = _plan(GridFaultSpec("garble", at_epochs={0}, worker=0))
        digest, events, stats = _run("supervised", 2, chaos=plan,
                                     supervision=FAST)
        assert digest == serial_digest
        assert _kinds(events)[:2] == ["garbled", "restart"]
        assert stats["failures"]["garbled"] == 1


class TestPoisonAndDegrade:
    def test_poison_epoch_adopts_the_shard(self, serial_digest):
        plan = _plan(
            GridFaultSpec("crash", at_epochs={1}, worker=0, persistent=True)
        )
        digest, events, stats = _run("supervised", 2, chaos=plan,
                                     supervision=FAST)
        assert digest == serial_digest
        kinds = _kinds(events)
        assert "poison" in kinds and "adopt" in kinds
        assert stats["adopted_shards"] == 1
        assert not stats["degraded"]  # one bad shard must not degrade all
        # poison_limit=3: two restart attempts, then adoption.
        assert kinds.count("restart") == 2

    def test_restart_budget_exhaustion_degrades_to_serial(self, serial_digest):
        plan = _plan(GridFaultSpec("crash", at_epochs={0}, persistent=True))
        supervision = Supervision(deadline=0.5, backoff_base=0.0,
                                  restart_budget=0)
        digest, events, stats = _run("supervised", 2, chaos=plan,
                                     supervision=supervision)
        assert digest == serial_digest
        assert "degrade" in _kinds(events)
        assert stats["degraded"]
        assert stats["restarts"] == 0
        assert stats["adopted_shards"] == 2  # every shard now in-process
        _assert_no_children()

    def test_backoff_doubles_and_respects_the_cap(self, serial_digest):
        plan = _plan(
            GridFaultSpec("crash", at_epochs={0}, worker=0, persistent=True)
        )
        supervision = Supervision(deadline=0.5, backoff_base=0.01,
                                  backoff_cap=0.02, poison_limit=4)
        digest, events, _ = _run("supervised", 2, chaos=plan,
                                 supervision=supervision)
        assert digest == serial_digest
        backoffs = [e["backoff"] for e in events if e["event"] == "restart"]
        assert backoffs == [0.01, 0.02, 0.02]  # base, doubled, capped

    def test_event_log_is_deterministic_fields_only(self):
        plan = GridFaultPlan.from_seed(7, intensity=8.0)
        _, events, _ = _run("supervised", 2, chaos=plan, supervision=FAST)
        assert events
        allowed = {"event", "worker", "epoch", "incarnation", "replayed",
                   "backoff", "attempts", "reason"}
        for event in events:
            assert set(event) <= allowed  # no wall-times, no exit codes


class TestSnapshotRecovery:
    def test_snapshot_of_a_dead_worker_adopts_and_serves(self):
        with Grid(_fleet(), _queues(), tick=1.0, seed=7, workers=2,
                  engine="supervised", supervision=FAST) as grid:
            grid.submit("j0", _job(5.0, name="j0"), queue="slow",
                        memory_bytes=GiB)
            grid.run_for(3.0)
            reference = grid.snapshot("a0")
            os.kill(grid.engine._procs[0].pid, signal.SIGKILL)
            time.sleep(0.05)
            assert grid.snapshot("a0") == reference
            kinds = _kinds(grid.supervisor_events)
            assert "adopt" in kinds
            reasons = [e.get("reason") for e in grid.supervisor_events]
            assert "snapshot" in reasons
            # The run continues on the adopted shard.
            grid.run_for(5.0)
            assert grid.jobs("done")

    def test_unknown_node_still_raises(self):
        with Grid(_fleet(), _queues(), tick=1.0, seed=7, workers=2,
                  engine="supervised") as grid:
            with pytest.raises(SimulationError):
                grid.engine.snapshot("nope")


class TestObservability:
    def test_grid_stats_carry_supervisor_counters(self):
        plan = _plan(GridFaultSpec("crash", at_epochs={0}, worker=0))
        grid = Grid(_fleet(), _queues(), tick=1.0, seed=7, workers=2,
                    engine="supervised", grid_chaos=plan, supervision=FAST)
        try:
            _script(grid)
            assert grid.stats["worker_failures"] >= 1
            assert grid.stats["restarts"] >= 1
            assert grid.stats["replayed_epochs"] >= 0
            assert grid.stats["degraded"] is False
        finally:
            grid.close()

    def test_profile_lines_include_recovery_counters(self, capsys):
        plan = _plan(GridFaultSpec("crash", at_epochs={0}, worker=0))
        grid = Grid(_fleet(), _queues(), tick=1.0, seed=7, workers=2,
                    engine="supervised", grid_chaos=plan, supervision=FAST,
                    profile=True)
        try:
            _script(grid)
        finally:
            grid.close()
        err = capsys.readouterr().err
        assert "restarts=" in err
        assert "adopted=" in err

    def test_close_is_idempotent(self):
        grid = Grid(_fleet(), _queues(), tick=1.0, seed=7, workers=2,
                    engine="supervised")
        procs = list(grid.engine._procs)
        assert grid.engine.live_workers() == 2
        grid.close()
        grid.close()
        assert all(not p.is_alive() for p in procs)


class TestUnsupervisedShardedFailures:
    """Satellite: the plain sharded engine doesn't recover, but it must
    fail with a typed WorkerFailure under a deadline — never a raw
    EOFError and never an unbounded block — and close() must always
    reach a SIGKILL for workers that ignore everything else."""

    def test_killed_worker_surfaces_typed_crash(self):
        grid = Grid(_fleet(), _queues(), tick=1.0, seed=7, workers=2,
                    engine="sharded")
        try:
            grid.submit("svc", _endless(), queue="quick", memory_bytes=GiB)
            os.kill(grid.engine._procs[0].pid, signal.SIGKILL)
            time.sleep(0.05)
            with pytest.raises(WorkerFailure) as info:
                grid.run_for(4.0)
            assert info.value.kind == "crash"
            assert info.value.worker == 0
            assert info.value.exitcode == -signal.SIGKILL
        finally:
            grid.close()
        _assert_no_children()

    def test_stopped_worker_surfaces_typed_hang(self):
        grid = Grid(_fleet(), _queues(), tick=1.0, seed=7, workers=2,
                    engine="sharded")
        try:
            grid.engine.deadline = 0.3
            grid.submit("svc", _endless(), queue="quick", memory_bytes=GiB)
            pid = grid.engine._procs[1].pid
            os.kill(pid, signal.SIGSTOP)
            try:
                with pytest.raises(WorkerFailure) as info:
                    grid.run_for(4.0)
                assert info.value.kind == "hang"
                assert info.value.worker == 1
            finally:
                os.kill(pid, signal.SIGCONT)
        finally:
            grid.close()
        _assert_no_children()

    def test_close_kill_ladder_reaps_a_stopped_worker(self):
        # A stopped process never reads the close message and SIGTERM
        # stays pending while it is stopped, so close() must walk all the
        # way down to SIGKILL. The join timeouts make this test slow by
        # design (~6s); it is the only coverage of the last rung.
        engine = create_engine(
            "sharded",
            [NodeSpec(name="n", sockets=1, cores_per_socket=1)],
            1.0, 7, 1,
        )
        proc = engine._procs[0]  # ready handshake consumed by __init__
        os.kill(proc.pid, signal.SIGSTOP)
        engine.close()
        assert not proc.is_alive()
        _assert_no_children()


class TestGridChaosCli:
    ARGS = ["--sim", "--grid-workers", "3", "--grid-chaos", "1",
            "-d", "2", "-n", "8"]

    def test_replay_is_byte_identical(self, capsys):
        assert main(self.ARGS) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS) == 0
        assert capsys.readouterr().out == first
        assert "supervisor:" in first
        # Seed 1 fires a worker fault on this span, so the replayed bytes
        # include the recovery event log, not just a clean summary.
        assert "restarts=1" in first

    def test_requires_sim_and_grid_workers(self, capsys):
        assert main(["--grid-chaos", "7"]) == 2
        assert "requires --sim and --grid-workers" in capsys.readouterr().err
        assert main(["--sim", "-b", "-n", "1", "--grid-chaos", "7"]) == 2


class TestCrashExitConstant:
    def test_chaos_crash_exitcode_is_deterministic(self):
        plan = _plan(GridFaultSpec("crash", at_epochs={0}, worker=0))
        grid = Grid(_fleet(), _queues(), tick=1.0, seed=7, workers=2,
                    engine="supervised", grid_chaos=plan, supervision=FAST)
        try:
            doomed = grid.engine._procs[0]
            grid.submit("j0", _job(3.0, name="j0"), queue="slow",
                        memory_bytes=GiB)
            grid.run_for(2.0)
            doomed.join(timeout=5.0)
            assert doomed.exitcode == CRASH_EXIT
        finally:
            grid.close()
