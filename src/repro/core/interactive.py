"""Interactive live-mode commands.

The live mode "periodically refreshes the screen ... and lets users
interactively inspect processes" (§2.1); the loop "goes idle until some
timeout expires or the user pressed a key" (§2.3). This module models the
key commands of a top-like tool against an injectable input source, so the
behaviour is fully testable without a terminal:

=========  =====================================================
key        effect
=========  =====================================================
``q``      quit the live loop
``d N``    set the refresh delay to N seconds
``H``      toggle per-thread / per-process counting
``i``      toggle hiding of idle tasks (below 5 %CPU)
``o``      cycle the sort key through the sortable columns
``s NAME`` switch to screen NAME (counters are re-attached)
``u UID``  watch only this uid (``u`` alone clears the filter)
``w N``    clip frames to N columns (``w`` alone resets)
``h``      show a help frame
=========  =====================================================

Commands are processed between refreshes, exactly like tiptop's keyboard
handling.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import replace

from repro.core import formatter
from repro.core.columns import ColumnKind
from repro.core.options import Options
from repro.core.sampler import Sampler
from repro.core.screen import Screen, builtin_screens, get_screen
from repro.errors import ConfigError, ReproError

#: Idle threshold applied when 'i' hides idle tasks.
IDLE_HIDE_THRESHOLD = 5.0

#: Column kinds the 'o' command can sort by (numeric per-row values).
SORTABLE_KINDS = frozenset({
    ColumnKind.PID,
    ColumnKind.CPU_PCT,
    ColumnKind.TIME,
    ColumnKind.PROCESSOR,
    ColumnKind.EXPR,
})

#: Narrowest width 'w' accepts: anything smaller cannot fit a header.
MIN_WIDTH = 10


def help_frame() -> str:
    """The frame shown for the 'h' command."""
    lines = ["tiptop interactive commands:"]
    lines += [
        "  q        quit",
        "  d N      set refresh delay to N seconds",
        "  H        toggle per-thread counting",
        "  i        toggle hiding idle tasks",
        "  o        cycle the sort column",
        "  s NAME   switch screen",
        "  u [UID]  filter by uid (no argument clears)",
        "  w [N]    clip frames to N columns (no argument resets)",
        "  h        this help",
        "screens: " + ", ".join(s.name for s in builtin_screens()),
    ]
    return "\n".join(lines)


class InteractiveSession:
    """A live tiptop session driven by key commands.

    Args:
        host: a Sim/Real host (see :mod:`repro.core.app`).
        options: initial options.
        screen: initial screen (default: by options.screen).
        input_source: callable returning the commands typed since the last
            refresh (the test harness queues strings; a terminal front-end
            would poll stdin).
        paint: frame sink.
        extra_screens: additional named screens selectable with ``s``
            (e.g. loaded from a config file).
    """

    def __init__(
        self,
        host,
        options: Options | None = None,
        screen: Screen | None = None,
        *,
        input_source: Callable[[], Iterable[str]] | None = None,
        paint: Callable[[str], object] | None = None,
        extra_screens: list[Screen] | None = None,
    ) -> None:
        self.host = host
        self.options = options or Options()
        self.screen = screen or get_screen(self.options.screen)
        self._input = input_source or (lambda: ())
        self._paint = paint or (lambda s: None)
        self._screens = {s.name: s for s in builtin_screens()}
        for s in extra_screens or ():
            self._screens[s.name] = s
        self._hide_idle = False
        self._quit = False
        self._width: int | None = None
        self.frames: list[str] = []
        self._sampler = self._make_sampler()

    def _make_sampler(self) -> Sampler:
        return Sampler(self.host.backend, self.host.tasks, self.screen, self.options)

    def _reattach(self) -> None:
        """Rebuild the sampler after a screen/option change."""
        self._sampler.close()
        self._sampler = self._make_sampler()

    def _sort_keys(self) -> list[str]:
        """Headers of the current screen's sortable columns, in order."""
        return [
            c.header for c in self.screen.columns if c.kind in SORTABLE_KINDS
        ]

    def _clip(self, text: str) -> str:
        if self._width is None:
            return text
        return "\n".join(line[: self._width] for line in text.splitlines())

    # -- command handling --------------------------------------------------
    def handle(self, command: str) -> None:
        """Apply one key command.

        Raises:
            ConfigError: malformed command arguments (reported to the
                screen in :meth:`run`; raised directly here for tests).
        """
        command = command.strip()
        if not command:
            return
        key, _, arg = command.partition(" ")
        arg = arg.strip()
        if key == "q":
            self._quit = True
        elif key == "d":
            try:
                delay = float(arg)
            except ValueError as exc:
                raise ConfigError(f"d needs a number, got {arg!r}") from exc
            self.options = replace(self.options, delay=delay)
        elif key == "H":
            self.options = replace(
                self.options, per_thread=not self.options.per_thread
            )
            self._reattach()
        elif key == "i":
            self._hide_idle = not self._hide_idle
        elif key == "o":
            keys = self._sort_keys()
            if keys:
                try:
                    i = keys.index(self.options.sort_by)
                except ValueError:
                    i = -1
                self.options = replace(
                    self.options, sort_by=keys[(i + 1) % len(keys)]
                )
                # Sorting is read at sample time, so no reattach: just
                # hand the sampler the new options.
                self._sampler.options = self.options
        elif key == "s":
            if arg not in self._screens:
                raise ConfigError(
                    f"unknown screen {arg!r} (have: {sorted(self._screens)})"
                )
            self.screen = self._screens[arg]
            self._reattach()
        elif key == "u":
            uid = None
            if arg:
                try:
                    uid = int(arg)
                except ValueError as exc:
                    raise ConfigError(f"u needs a uid, got {arg!r}") from exc
            self.options = replace(self.options, watch_uid=uid)
            self._reattach()
        elif key == "w":
            if not arg:
                self._width = None
            else:
                try:
                    width = int(arg)
                except ValueError as exc:
                    raise ConfigError(f"w needs a width, got {arg!r}") from exc
                if width < MIN_WIDTH:
                    raise ConfigError(
                        f"width must be >= {MIN_WIDTH}, got {width}"
                    )
                self._width = width
        elif key == "h":
            self._paint(help_frame())
            self.frames.append(help_frame())
        else:
            raise ConfigError(f"unknown command {command!r}")

    # -- the loop -----------------------------------------------------------
    def run(self, max_iterations: int = 1000) -> list[str]:
        """Run the live loop until 'q' or ``max_iterations`` refreshes.

        Returns all painted frames (help frames included).
        """
        self._sampler.sample()  # baseline
        for _ in range(max_iterations):
            for command in self._input():
                try:
                    self.handle(command)
                except ConfigError as exc:
                    message = f"tiptop: {exc}"
                    self._paint(message)
                    self.frames.append(message)
                if self._quit:
                    break
            if self._quit:
                break
            self.host.sleep(self.options.delay)
            snapshot = self._sampler.sample()
            threshold = IDLE_HIDE_THRESHOLD if self._hide_idle else 0.0
            frame = self._clip(
                formatter.render_frame(
                    self.screen, snapshot, idle_threshold=threshold
                )
            )
            self._paint(frame)
            self.frames.append(frame)
        self._sampler.close()
        return self.frames

    def close(self) -> None:
        """Release counters (idempotent)."""
        try:
            self._sampler.close()
        except ReproError:  # pragma: no cover - defensive
            pass
