"""SimMachine integration: time, processes, timers, counters, SMT."""

import math

import pytest

from repro.errors import SimulationError
from repro.sim import NEHALEM, SimMachine
from repro.sim.events import Event
from repro.sim.smt import issue_share
from repro.sim.workload import Workload


class TestLifecycle:
    def test_spawn_assigns_pids(self, nehalem_machine, endless_workload):
        a = nehalem_machine.spawn("a", endless_workload)
        b = nehalem_machine.spawn("b", endless_workload)
        assert b.pid == a.pid + 1
        assert nehalem_machine.process(a.pid) is a

    def test_unknown_pid_raises(self, nehalem_machine):
        with pytest.raises(SimulationError):
            nehalem_machine.process(1)

    def test_process_exits_at_budget(self, coarse_machine, basic_workload):
        p = coarse_machine.spawn("job", basic_workload)
        # ~10 s of work at IPC 1.5: run long enough to finish.
        coarse_machine.run_for(30.0)
        assert not p.alive
        assert p.retired == pytest.approx(basic_workload.total_instructions)

    def test_kill_stops_thread(self, nehalem_machine, endless_workload):
        p = nehalem_machine.spawn("victim", endless_workload)
        nehalem_machine.run_for(1.0)
        nehalem_machine.kill(p.pid)
        t0 = p.cpu_time
        nehalem_machine.run_for(1.0)
        assert p.cpu_time == t0
        assert not p.alive

    def test_live_processes_excludes_dead(self, nehalem_machine, endless_workload):
        p = nehalem_machine.spawn("a", endless_workload)
        nehalem_machine.kill(p.pid)
        assert p not in nehalem_machine.live_processes()

    def test_multithreaded_spawn(self, nehalem_machine, endless_workload):
        p = nehalem_machine.spawn("mt", endless_workload, nthreads=3)
        assert len(p.threads) == 3
        assert p.threads[0].tid == p.pid

    def test_bad_affinity_rejected(self, nehalem_machine, endless_workload):
        with pytest.raises(SimulationError):
            nehalem_machine.spawn("x", endless_workload, affinity={99})


class TestClockAndTimers:
    def test_run_until_exact(self, nehalem_machine):
        nehalem_machine.run_until(1.05)
        assert nehalem_machine.now == pytest.approx(1.05)

    def test_run_until_counts_whole_ticks_without_drift(self, nehalem_machine):
        """10^6 ticks at tick=0.1 must be exactly 10^6 full steps.

        The old epsilon loop (``while now < deadline - 1e-12``) compared an
        absolute epsilon against a clock whose ulp grows past it (ulp of
        1e5 is ~1.5e-11), so long runs shed ticks and finished with ragged
        fractional steps. Integer tick accounting cannot drift. ``_step``
        is stubbed: the property under test is pure tick bookkeeping.
        """
        machine = nehalem_machine
        steps = []

        def fake_step(dt):
            steps.append(dt)
            machine.now += dt

        machine._step = fake_step
        machine.run_until(100_000.0)
        assert len(steps) == 1_000_000
        assert all(dt == 0.1 for dt in steps)

    def test_run_until_fractional_remainder_still_steps(self, nehalem_machine):
        machine = nehalem_machine
        steps = []

        def fake_step(dt):
            steps.append(dt)
            machine.now += dt

        machine._step = fake_step
        machine.run_until(0.25)
        assert len(steps) == 3
        assert steps[0] == steps[1] == 0.1
        assert steps[2] == pytest.approx(0.05)
        machine.run_until(0.25)  # already there: no extra steps
        assert len(steps) == 3

    def test_timer_fires_in_order(self, nehalem_machine):
        fired = []
        nehalem_machine.at(0.5, lambda: fired.append("b"))
        nehalem_machine.at(0.2, lambda: fired.append("a"))
        nehalem_machine.run_for(1.0)
        assert fired == ["a", "b"]

    def test_timer_in_past_rejected(self, nehalem_machine):
        nehalem_machine.run_for(1.0)
        with pytest.raises(SimulationError):
            nehalem_machine.at(0.5, lambda: None)

    def test_timer_spawn_pattern(self, nehalem_machine, endless_workload):
        """Fig. 10's arrival script: spawn from a timer callback."""
        spawned = []
        nehalem_machine.at(
            0.5, lambda: spawned.append(nehalem_machine.spawn("late", endless_workload))
        )
        nehalem_machine.run_for(1.0)
        assert spawned and spawned[0].alive
        assert spawned[0].start_time == pytest.approx(0.5, abs=0.11)


class TestCounting:
    def test_ipc_matches_calibration(self, coarse_machine, endless_workload):
        p = coarse_machine.spawn("j", endless_workload)
        ci = coarse_machine.counters.open(Event.INSTRUCTIONS, p.pid, p.uid)
        cc = coarse_machine.counters.open(Event.CYCLES, p.pid, p.uid)
        coarse_machine.run_for(20.0)
        ipc = ci.value / cc.value
        # basic_phase is calibrated at exec_cpi 0.5 -> solo IPC from model.
        from repro.sim.core import solo_rates

        expected = solo_rates(NEHALEM, endless_workload.phases[0]).ipc
        assert ipc == pytest.approx(expected, rel=0.05)

    def test_cycles_track_wall_clock(self, coarse_machine, endless_workload):
        p = coarse_machine.spawn("j", endless_workload)
        cc = coarse_machine.counters.open(Event.CYCLES, p.pid, p.uid)
        coarse_machine.run_for(10.0)
        assert cc.value == pytest.approx(NEHALEM.freq_hz * 10.0, rel=0.01)

    def test_noise_preserves_mean_ipc(self, basic_phase):
        """Per-tick jitter must not bias the long-run average much."""
        from dataclasses import replace

        noisy = replace(basic_phase, noise=0.08, instructions=math.inf)
        m = SimMachine(NEHALEM, tick=0.25, seed=1)
        p = m.spawn("noisy", Workload("w", (noisy,)))
        ci = m.counters.open(Event.INSTRUCTIONS, p.pid, p.uid)
        cc = m.counters.open(Event.CYCLES, p.pid, p.uid)
        m.run_for(120.0)
        from repro.sim.core import solo_rates

        expected = solo_rates(NEHALEM, basic_phase).ipc
        assert ci.value / cc.value == pytest.approx(expected, rel=0.05)

    def test_determinism(self, basic_workload):
        def run():
            m = SimMachine(NEHALEM, tick=0.25, seed=99)
            p = m.spawn("d", basic_workload)
            c = m.counters.open(Event.INSTRUCTIONS, p.pid, p.uid)
            m.run_for(5.0)
            return c.value

        assert run() == run()

    def test_phase_boundary_preserves_total(self, basic_phase):
        """Instruction totals are exact across phase boundaries."""
        w = Workload(
            "two", (basic_phase.with_budget(1e9), basic_phase.with_budget(2e9))
        )
        m = SimMachine(NEHALEM, tick=0.25, seed=1)
        p = m.spawn("j", w)
        m.run_for(10.0)
        assert not p.alive
        assert p.retired == pytest.approx(3e9)


class TestSmt:
    def test_issue_share_solo(self):
        assert issue_share(NEHALEM, 1) == 1.0

    def test_issue_share_pair(self):
        assert issue_share(NEHALEM, 2) == pytest.approx(NEHALEM.smt_efficiency / 2)

    def test_issue_share_bounds(self):
        with pytest.raises(SimulationError):
            issue_share(NEHALEM, 0)
        with pytest.raises(SimulationError):
            issue_share(NEHALEM, 3)

    def test_same_core_throughput_penalty(self, endless_workload):
        """Two pinned SMT siblings each run slower than solo."""
        solo = SimMachine(NEHALEM, tick=0.25, seed=1)
        sp = solo.spawn("s", endless_workload, affinity={0})
        sc = solo.counters.open(Event.INSTRUCTIONS, sp.pid, sp.uid)
        solo.run_for(10.0)

        pair = SimMachine(NEHALEM, tick=0.25, seed=1)
        a = pair.spawn("a", endless_workload, affinity={0})
        b = pair.spawn("b", endless_workload, affinity={4})
        ca = pair.counters.open(Event.INSTRUCTIONS, a.pid, a.uid)
        cb = pair.counters.open(Event.INSTRUCTIONS, b.pid, b.uid)
        pair.run_for(10.0)
        assert ca.value < sc.value
        # But combined throughput beats one thread (SMT efficiency > 1).
        assert ca.value + cb.value > sc.value
