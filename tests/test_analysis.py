"""Analysis layer: time series, phase detection, interference, validation."""

import math

import numpy as np
import pytest

from repro.analysis.interference import (
    corun_slowdown,
    overlap_window,
    sensitivity_matrix,
)
from repro.analysis.phase_detect import detect_phases, transition_points
from repro.analysis.timeseries import MetricSeries
from repro.analysis.validation import compare_counts
from repro.errors import ReproError


class TestMetricSeries:
    def test_length_mismatch(self):
        with pytest.raises(ReproError):
            MetricSeries(np.arange(3), np.arange(4))

    def test_mean(self):
        s = MetricSeries.of([0, 1, 2], [1.0, 2.0, 3.0])
        assert s.mean() == 2.0

    def test_window(self):
        s = MetricSeries.of([0, 1, 2, 3], [10, 20, 30, 40])
        w = s.window(1, 3)
        assert list(w.y) == [20, 30]

    def test_smoothed_reduces_variance(self):
        rng = np.random.default_rng(0)
        y = rng.normal(1.0, 0.5, 200)
        s = MetricSeries.of(np.arange(200), y)
        assert np.var(s.smoothed(0.2).y) < np.var(s.y)

    def test_resample(self):
        s = MetricSeries.of([0.0, 10.0], [0.0, 100.0])
        r = s.resampled(np.array([5.0]))
        assert r.y[0] == pytest.approx(50.0)

    def test_resample_too_short(self):
        with pytest.raises(ReproError):
            MetricSeries.of([1.0], [1.0]).resampled(np.array([1.0]))

    def test_ascii_plot_renders(self):
        s = MetricSeries.of(np.arange(50), np.sin(np.arange(50) / 5), "wave")
        text = s.ascii_plot(width=40, height=8)
        assert "wave" in text
        assert "*" in text
        assert len(text.splitlines()) == 11  # label + 8 rows + axis + ticks

    def test_ascii_plot_empty(self):
        assert "empty" in MetricSeries.of([], []).ascii_plot()


class TestPhaseDetect:
    def _step_series(self, n1=100, n2=100, lo=1.0, hi=0.03, noise=0.0, seed=0):
        rng = np.random.default_rng(seed)
        y = np.r_[
            lo + noise * rng.normal(size=n1), hi + noise * rng.normal(size=n2)
        ]
        return MetricSeries.of(np.arange(n1 + n2), y)

    def test_clean_step_found(self):
        cuts = transition_points(self._step_series())
        assert len(cuts) == 1
        assert abs(cuts[0] - 100) <= 2

    def test_noisy_step_found(self):
        """The Fig. 3a scenario: noisy IPC ~1.0 collapsing to ~0.03."""
        cuts = transition_points(self._step_series(noise=0.08, seed=3))
        assert len(cuts) == 1
        assert abs(cuts[0] - 100) <= 5

    def test_flat_series_no_transitions(self):
        s = MetricSeries.of(np.arange(100), np.ones(100))
        assert transition_points(s) == []

    def test_short_series_no_transitions(self):
        s = MetricSeries.of(np.arange(5), np.ones(5))
        assert transition_points(s) == []

    def test_segments_cover_series(self):
        segments = detect_phases(self._step_series())
        assert segments[0].start_index == 0
        assert segments[-1].end_index == 200
        assert sum(seg.length for seg in segments) == 200

    def test_segment_means(self):
        segments = detect_phases(self._step_series())
        assert segments[0].mean == pytest.approx(1.0, abs=0.05)
        assert segments[-1].mean == pytest.approx(0.03, abs=0.05)

    def test_multiple_steps(self):
        y = np.r_[np.ones(80), 2 * np.ones(80), 0.5 * np.ones(80)]
        cuts = transition_points(MetricSeries.of(np.arange(240), y))
        assert len(cuts) == 2

    def test_bad_window(self):
        with pytest.raises(ReproError):
            transition_points(self._step_series(), window=0)


class TestInterference:
    def test_slowdown_report(self):
        s = MetricSeries.of(np.arange(100), np.r_[1.3 * np.ones(50), 1.05 * np.ones(50)])
        report = corun_slowdown(s, (0, 50), (50, 100))
        assert report.slowdown == pytest.approx(0.192, abs=0.01)
        assert report.factor == pytest.approx(1.3 / 1.05, rel=0.01)

    def test_empty_window_raises(self):
        s = MetricSeries.of([1.0], [1.0])
        with pytest.raises(ReproError):
            corun_slowdown(s, (5, 6), (0, 2))

    def test_overlap_window(self):
        assert overlap_window([1.0, 2.0], [5.0, 6.0]) == (2.0, 5.0)
        assert overlap_window([1.0, 6.0], [5.0, 9.0]) is None
        assert overlap_window([], []) is None

    def test_overlap_mismatch(self):
        with pytest.raises(ReproError):
            overlap_window([1.0], [])

    def test_sensitivity_matrix(self):
        mk = lambda drop: MetricSeries.of(
            np.arange(20), np.r_[np.ones(10), (1 - drop) * np.ones(10)]
        )
        out = sensitivity_matrix(
            {"a": mk(0.2), "b": mk(0.05)}, (0, 10), (10, 20)
        )
        assert out["a"] == pytest.approx(0.2, abs=0.01)
        assert out["b"] == pytest.approx(0.05, abs=0.01)


class TestValidation:
    def test_relative_errors(self):
        report = compare_counts({"a": (1.0006e12, 1e12), "b": (0.9994e12, 1e12)})
        assert report.mean_relative_error == pytest.approx(6e-4, rel=0.01)
        assert report.max_relative_error == pytest.approx(6e-4, rel=0.01)

    def test_table_renders(self):
        report = compare_counts({"x": (100.0, 100.0)})
        text = report.to_table()
        assert "x" in text and "mean" in text

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            compare_counts({}).mean_relative_error

    def test_zero_reference_rejected(self):
        report = compare_counts({"bad": (1.0, 0.0)})
        with pytest.raises(ReproError):
            report.mean_relative_error
