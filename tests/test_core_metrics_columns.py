"""Canonical metrics and column definitions."""

import math

import pytest

from repro.core.columns import (
    COMMAND_COLUMN,
    Column,
    ColumnKind,
    PID_COLUMN,
    expr_column,
)
from repro.core.metrics import METRICS, get_metric
from repro.errors import ConfigError


class TestMetrics:
    ENV = {
        "instructions": 1000.0,
        "cycles": 2000.0,
        "cache_misses": 9.0,
        "cache_references": 90.0,
        "branch_misses": 4.0,
        "branch_instructions": 200.0,
        "fp_assist": 120.0,
        "fp_operations": 100.0,
        "loads": 250.0,
        "l2_misses": 30.0,
        "l3_misses": 20.0,
        "uops_executed": 1300.0,
        "mem_latency_cycles": 1800.0,
        "delta_t": 2.0,
    }

    def test_ipc(self):
        assert get_metric("IPC").compute(self.ENV) == 0.5

    def test_dmis(self):
        assert get_metric("DMIS").compute(self.ENV) == 0.9

    def test_miss_ratio(self):
        assert get_metric("MISS_RATIO").compute(self.ENV) == 10.0

    def test_branch_metrics(self):
        assert get_metric("BMIS").compute(self.ENV) == 0.4
        assert get_metric("BMISPRED").compute(self.ENV) == 2.0

    def test_fp_assist(self):
        assert get_metric("FP_ASSIST").compute(self.ENV) == 12.0

    def test_characterisation_rates(self):
        assert get_metric("FPI").compute(self.ENV) == 0.1
        assert get_metric("LPI").compute(self.ENV) == 0.25
        assert get_metric("BPI").compute(self.ENV) == 0.2
        assert get_metric("FPC").compute(self.ENV) == 0.05
        assert get_metric("LPC").compute(self.ENV) == 0.125

    def test_case_insensitive_lookup(self):
        assert get_metric("ipc") is METRICS["IPC"]

    def test_unknown_metric(self):
        with pytest.raises(KeyError):
            get_metric("WARP_FACTOR")

    def test_all_metrics_evaluate(self):
        for metric in METRICS.values():
            value = metric.compute(self.ENV)
            assert isinstance(value, float)
            assert not math.isnan(value)

    def test_empty_interval_gives_nan(self):
        env = dict.fromkeys(self.ENV, 0.0)
        assert math.isnan(get_metric("IPC").compute(env))


class TestColumns:
    def test_expr_column_variables(self):
        col = expr_column("IPC", "instructions / cycles")
        assert col.variables() == frozenset({"instructions", "cycles"})

    def test_intrinsic_has_no_variables(self):
        assert PID_COLUMN.variables() == frozenset()

    def test_expr_column_needs_expression(self):
        with pytest.raises(ConfigError):
            Column("X", ColumnKind.EXPR)

    def test_positive_width(self):
        with pytest.raises(ConfigError):
            Column("X", ColumnKind.PID, width=0)

    def test_format_renders_nan_as_dash(self):
        col = expr_column("IPC", "a / b")
        assert col.to_format().render(math.nan) == "-"

    def test_format_decimals(self):
        col = expr_column("IPC", "a", decimals=1)
        assert col.to_format().render(1.966) == "2.0"

    def test_command_truncates(self):
        fmt = COMMAND_COLUMN.to_format()
        assert fmt.format_cell("a-very-long-command-name") == "a-very-long-com"
