"""Ablations of the design choices DESIGN.md §5 calls out.

Not figures from the paper, but measurements of the trade-offs the paper
*argues* about in §2.5/§2.6/§4. Each ablation is a committed spec under
``benchmarks/specs/`` executed by the deterministic experiment runner
(``python -m repro.experiments run <spec>`` regenerates the artifact
byte-identically); the tests here assert the *shape* of the results:

* counting vs sampling accuracy (Moore [29]; tiptop chose counting);
* counter multiplexing error when the events requested exceed the PMU
  width (the Xeon W3550 has sixteen counters — §2.6);
* refresh period: coarser sampling is cheaper but blurs phase boundaries;
* per-thread vs per-process counting (§2.2 supports both);
* simulation tick size (fidelity vs speed);
* the §3.4 outlook, implemented: memory-latency counters expose DRAM-level
  contention that plain miss counts understate.
"""

import time
from pathlib import Path

import pytest
from _harness import OUT_DIR, once, save_artifact

from repro import Options, SimHost, TipTop
from repro.core.phases import pid_metric_series
from repro.core.screen import get_screen
from repro.experiments import load, plan, run
from repro.experiments.executor import run_cell
from repro.sim import NEHALEM
from repro.sim.workloads import datacenter, revolve

SPEC_DIR = Path(__file__).parent / "specs"


def _run_spec(name: str) -> list[dict]:
    """Run one committed spec, write its artifact, return the cells."""
    artifact = run(load(SPEC_DIR / f"{name}.toml"), out_dir=OUT_DIR)
    return artifact["cells"]


def _by_config(cells: list[dict]) -> dict[str, dict]:
    return {c["config"]: c["metrics"] for c in cells}


# ---------------------------------------------------------------------------
# Ablation 1: counting vs sampling
# ---------------------------------------------------------------------------
def test_ablation_counting_vs_sampling(benchmark):
    cells = once(
        benchmark, lambda: _run_spec("ablation-counting-vs-sampling")
    )
    # Counting is the reference; sampling always errs. At practical
    # periods the error is the (constant-rate) interrupt loss, well under
    # a percent; once the period exceeds the event count the estimate
    # collapses to the quantisation floor.
    errs = [c["metrics"]["sampling_rel_err"] for c in cells]
    assert all(e > 0 for e in errs)
    assert all(e < 0.01 for e in errs[:-1])
    assert errs[-1] > 0.3


# ---------------------------------------------------------------------------
# Ablation 2: multiplexing error vs requested events
# ---------------------------------------------------------------------------
def test_ablation_multiplexing(benchmark):
    cells = once(benchmark, lambda: _run_spec("ablation-multiplexing"))
    err = {name: m["count_rel_err"] for name, m in _by_config(cells).items()}
    assert NEHALEM.pmu_width == 16
    # Within the PMU width the count is exact.
    for name in ("events-04", "events-12", "events-16"):
        assert err[name] < 1e-9
    # Beyond it the kernel multiplexes and user space scales by
    # enabled/running: the truth comes back within a few percent.
    assert 1e-6 < err["events-all"] < 0.05


# ---------------------------------------------------------------------------
# Ablation 3: refresh period vs phase visibility
# ---------------------------------------------------------------------------
def test_ablation_refresh_period(benchmark):
    cells = once(benchmark, lambda: _run_spec("ablation-refresh-period"))
    true_transition = 953 * revolve.STEP_INSTRUCTIONS / 20 / (
        1.0 * NEHALEM.freq_hz
    )  # seconds, at IPC 1.0
    rows = [
        (float(c["config"].rsplit("-", 1)[1]), c["metrics"].get("transition_s"))
        for c in cells
    ]
    finite = [(d, t) for d, t in rows if t is not None]
    # Every delay up to 20 s still finds the transition; error grows with
    # the period, cost (reads/hour ~ 3600/delay) shrinks.
    assert len(finite) >= 3
    errors = [abs(t - true_transition) for _, t in finite]
    assert errors[0] < errors[-1] + 1e-9
    assert all(
        abs(t - true_transition) <= 2.5 * d + 5.0 for d, t in finite
    )  # ~sampling quantum


# ---------------------------------------------------------------------------
# Ablation 4: per-thread vs per-process counting
# ---------------------------------------------------------------------------
def test_ablation_thread_vs_process(benchmark):
    cells = once(benchmark, lambda: _run_spec("ablation-thread-vs-process"))
    by_config = _by_config(cells)
    per_process = by_config["per-process"]
    per_thread = by_config["per-thread"]
    # One row per process vs three rows per refresh.
    assert per_process["tasks_observed"] == 1
    assert per_thread["rows"] == 3 * per_process["rows"]
    # The folded count matches the sum of the thread counts.
    assert per_process["instructions"] == pytest.approx(
        per_thread["instructions"], rel=0.05
    )


# ---------------------------------------------------------------------------
# Ablation 5: simulation tick size (fidelity vs speed)
# ---------------------------------------------------------------------------
def test_ablation_tick_size(benchmark):
    cells = once(benchmark, lambda: _run_spec("ablation-tick-size"))
    # Coarser ticks change the contended IPC by well under the figures'
    # tolerance bands...
    ipcs = [c["metrics"]["ipc_mean"] for c in cells]
    assert max(ipcs) - min(ipcs) < 0.03 * ipcs[0]
    # ...while cutting wall time substantially (finest vs coarsest cell).
    spec_cells = plan(load(SPEC_DIR / "ablation-tick-size.toml"))
    start = time.perf_counter()
    run_cell(spec_cells[0])
    fine_wall = time.perf_counter() - start
    start = time.perf_counter()
    run_cell(spec_cells[-1])
    coarse_wall = time.perf_counter() - start
    assert coarse_wall < fine_wall


# ---------------------------------------------------------------------------
# Ablation 6 (extension): the §3.4 memory-latency outlook, implemented
# ---------------------------------------------------------------------------
def _latency_observation():
    machine = datacenter.make_node(tick=2.0, seed=21)
    jobs = datacenter.populate_fig10(machine, burst_start=300.0, burst_duration=900.0)
    victim = jobs["user1"][0]
    app = TipTop(SimHost(machine), Options(delay=10.0), get_screen("latency"))
    with app:
        recorder = app.run_collect(int(1500 / 10))
    series = pid_metric_series(recorder, victim.pid, "MEMLAT")
    return series


def test_ablation_memlat_extension(benchmark):
    series = once(benchmark, _latency_observation)
    save_artifact(
        "ablation_memlat_extension",
        "Extension (§3.4 outlook): observed memory latency of a victim job\n"
        + series.ascii_plot(),
    )
    solo = series.window(0, 290).mean()
    corun = series.window(360, 1140).mean()
    # The DRAM/LLC contention is directly visible as latency inflation.
    assert corun > 1.02 * solo
