"""Batch-stream parsing: renderer <-> parser round trip."""

import pytest

from repro import Options, SimHost, TipTop
from repro.core.batchparse import parse_blocks, series_from_blocks
from repro.errors import ReproError


@pytest.fixture
def stream_and_pids(coarse_machine, endless_workload):
    a = coarse_machine.spawn("alpha", endless_workload)
    b = coarse_machine.spawn("beta", endless_workload)
    with TipTop(SimHost(coarse_machine), Options(delay=2.0)) as app:
        blocks = app.run_batch(4, write=lambda s: None)
    return "\n".join(blocks), (a.pid, b.pid)


class TestRoundTrip:
    def test_block_count_and_stamps(self, stream_and_pids):
        stream, _ = stream_and_pids
        blocks = parse_blocks(stream)
        assert len(blocks) == 4
        assert blocks[0].time == pytest.approx(2.0)
        assert all(b.interval == pytest.approx(2.0) for b in blocks)

    def test_rows_and_headers(self, stream_and_pids):
        stream, (pid_a, _) = stream_and_pids
        block = parse_blocks(stream)[0]
        assert block.headers[0] == "PID"
        assert block.headers[-1] == "COMMAND"
        row = block.row_for(pid_a)
        assert row is not None
        assert row["COMMAND"] == "alpha"
        assert isinstance(row["IPC"], float)
        assert row["%CPU"] == pytest.approx(100.0, abs=1.0)

    def test_series_extraction(self, stream_and_pids):
        stream, (pid_a, _) = stream_and_pids
        blocks = parse_blocks(stream)
        times, ipcs = series_from_blocks(blocks, pid_a, "IPC")
        assert len(times) == 4
        assert all(0.5 < v < 3.0 for v in ipcs)

    def test_missing_pid_empty_series(self, stream_and_pids):
        stream, _ = stream_and_pids
        blocks = parse_blocks(stream)
        times, values = series_from_blocks(blocks, 424242, "IPC")
        assert times == [] and values == []


class TestStrictness:
    def test_garbage_stamp(self):
        with pytest.raises(ReproError):
            parse_blocks("hello world\n")

    def test_missing_header(self):
        with pytest.raises(ReproError):
            parse_blocks("--- t=1.0s interval=1.0s ---\n")

    def test_wrong_header_start(self):
        with pytest.raises(ReproError):
            parse_blocks("--- t=1.0s interval=1.0s ---\nUSER PID\n")

    def test_short_row(self):
        text = (
            "--- t=1.0s interval=1.0s ---\n"
            "   PID USER %CPU COMMAND\n"
            "  1 bob\n"
        )
        with pytest.raises(ReproError):
            parse_blocks(text)

    def test_nan_cell_becomes_none(self):
        text = (
            "--- t=1.0s interval=1.0s ---\n"
            "   PID USER  IPC COMMAND\n"
            "  1 bob    - sleepy\n"
        )
        block = parse_blocks(text)[0]
        assert block.rows[0]["IPC"] is None

    def test_empty_stream(self):
        assert parse_blocks("") == []
