"""Tool options."""

import pytest

from repro.core.options import Options
from repro.errors import ConfigError


class TestValidation:
    def test_defaults(self):
        o = Options()
        assert o.delay == 2.0
        assert not o.batch
        assert o.screen == "default"

    def test_bad_delay(self):
        with pytest.raises(ConfigError):
            Options(delay=0)

    def test_bad_iterations(self):
        with pytest.raises(ConfigError):
            Options(iterations=0)

    def test_bad_idle_threshold(self):
        with pytest.raises(ConfigError):
            Options(idle_threshold=-1)

    def test_bad_max_tasks(self):
        with pytest.raises(ConfigError):
            Options(max_tasks=0)

    def test_chaos_defaults_off(self):
        o = Options()
        assert o.chaos is None
        assert o.retry_limit == 2
        assert o.retry_backoff == 0.0

    def test_bad_retry_limit(self):
        with pytest.raises(ConfigError):
            Options(retry_limit=-1)

    def test_zero_retry_limit_allowed(self):
        assert Options(retry_limit=0).retry_limit == 0

    def test_bad_retry_backoff(self):
        with pytest.raises(ConfigError):
            Options(retry_backoff=-0.1)


class TestWants:
    def test_default_watches_everything(self):
        o = Options()
        assert o.wants(pid=1, uid=0, comm="anything")

    def test_uid_filter(self):
        o = Options(watch_uid=1000)
        assert o.wants(pid=1, uid=1000, comm="x")
        assert not o.wants(pid=1, uid=1001, comm="x")

    def test_pid_filter(self):
        o = Options(watch_pids=frozenset({5, 6}))
        assert o.wants(pid=5, uid=0, comm="x")
        assert not o.wants(pid=7, uid=0, comm="x")

    def test_command_filter(self):
        o = Options(watch_commands=frozenset({"mcf"}))
        assert o.wants(pid=1, uid=0, comm="mcf")
        assert not o.wants(pid=1, uid=0, comm="astar")

    def test_filters_combine(self):
        o = Options(watch_uid=1000, watch_commands=frozenset({"mcf"}))
        assert o.wants(pid=1, uid=1000, comm="mcf")
        assert not o.wants(pid=1, uid=1000, comm="astar")
        assert not o.wants(pid=1, uid=0, comm="mcf")
