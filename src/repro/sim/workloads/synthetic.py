"""Synthetic workload populations for stress and endurance testing.

The paper's tool runs unattended against *whatever* a production node
happens to be running. This generator produces deterministic, seeded
populations spanning the behavioural space the models cover — compute-bound,
memory-bound, branchy, FP-heavy, phase-switching, short-lived, duty-cycled —
so endurance tests can churn thousands of realistic processes through the
monitor without hand-writing each one.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.sim.arch import ArchModel, NEHALEM
from repro.sim.branch import BranchBehavior
from repro.sim.cache import MemoryBehavior
from repro.sim.core import calibrate_phase
from repro.sim.isa import InstructionMix
from repro.sim.workload import Phase, Workload
from repro.sim.workloads import modern

#: The behavioural archetypes the generator draws from. The first five
#: are the paper-era shapes; the rest mirror the modern workload library
#: (:mod:`repro.sim.workloads.modern`) so conformance fuzzing covers the
#: same behavioural space the experiment runner sweeps.
ARCHETYPES = (
    "compute",     # high IPC, cache-resident
    "memory",      # LLC-missing, low IPC
    "branchy",     # mispredict-limited
    "fp",          # FP-dense kernels
    "phased",      # alternates two regimes
    "jit",         # interpreter warmup -> optimised steady -> deopt dip
    "gc",          # mutator with collector pause train
    "numa",        # local/remote-socket miss alternation
    "interp",      # bytecode-dispatch loop, mispredict-limited
    "io",          # syscall-heavy service bursts
)

#: Solo IPC of an archetype's *first* phase relative to its target
#: (multi-phase archetypes open away from the mean; tests use this to
#: check calibration without re-deriving each shape).
FIRST_PHASE_IPC = {
    "compute": 1.0,
    "memory": 1.0,
    "branchy": 1.0,
    "fp": 1.0,
    "phased": 1.2,
    "jit": 0.55,
    "gc": 1.18,
    "numa": 1.3,
    "interp": 1.0,
    "io": 1.3,
}


@dataclass(frozen=True)
class SyntheticSpec:
    """One generated job description (inputs to :func:`build`)."""

    name: str
    archetype: str
    target_ipc: float
    duration: float  # solo seconds; inf for services
    duty_cycle: float
    nthreads: int


def _mix_for(archetype: str, rng: np.random.Generator) -> InstructionMix:
    if archetype == "fp":
        return InstructionMix.of(
            int_alu=0.28, load=0.24, store=0.08, branch=0.08, fp_sse=0.32
        )
    if archetype == "branchy":
        return InstructionMix.of(
            int_alu=0.48, load=0.22, store=0.07, branch=0.23
        )
    if archetype == "memory":
        return InstructionMix.of(
            int_alu=0.37, load=0.31, store=0.12, branch=0.2
        )
    return InstructionMix.of(
        int_alu=0.5, load=0.22, store=0.08, branch=0.15, fp_sse=0.05
    )


def _memory_for(archetype: str, rng: np.random.Generator) -> MemoryBehavior:
    if archetype == "memory":
        return MemoryBehavior(
            working_set=int(rng.integers(64, 1024)) * 1024 * 1024,
            level_hit_ratios=(0.94, 0.955, 0.97),
            mlp=float(rng.uniform(3.5, 6.0)),
        )
    return MemoryBehavior(
        working_set=int(rng.integers(1, 16)) * 1024 * 1024,
        level_hit_ratios=(0.97, 0.99, 0.998),
        mlp=2.0,
    )


def _ipc_range(archetype: str) -> tuple[float, float]:
    return {
        "compute": (1.4, 2.4),
        "memory": (0.35, 0.7),
        "branchy": (0.8, 1.2),
        "fp": (1.2, 1.9),
        "phased": (0.8, 1.6),
        # Modern shapes: ranges keep every phase multiplier reachable
        # (the heavy phases' memory penalties bound the top end).
        "jit": (0.8, 1.5),
        "gc": (0.6, 1.1),
        "numa": (0.35, 0.6),
        "interp": (0.55, 0.95),
        "io": (0.5, 0.95),
    }[archetype]


def generate_specs(
    count: int,
    *,
    seed: int = 0,
    service_fraction: float = 0.2,
) -> list[SyntheticSpec]:
    """Draw ``count`` deterministic job specs.

    Raises:
        WorkloadError: non-positive count or a fraction outside [0, 1].
    """
    if count < 1:
        raise WorkloadError(f"count must be >= 1, got {count}")
    if not 0 <= service_fraction <= 1:
        raise WorkloadError("service_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    specs = []
    for i in range(count):
        archetype = ARCHETYPES[int(rng.integers(0, len(ARCHETYPES)))]
        lo, hi = _ipc_range(archetype)
        duration = (
            math.inf
            if rng.random() < service_fraction
            else float(rng.uniform(10.0, 120.0))
        )
        specs.append(
            SyntheticSpec(
                name=f"{archetype}{i}",
                archetype=archetype,
                target_ipc=float(rng.uniform(lo, hi)),
                duration=duration,
                duty_cycle=float(rng.choice([1.0, 1.0, 1.0, 0.4, 0.7])),
                nthreads=int(rng.choice([1, 1, 1, 2, 4])),
            )
        )
    return specs


#: Phase shapes of the modern archetypes: ``(name, ipc factor, weight,
#: mix, memory, mispredict ratio)`` — factors relative to the spec's
#: target IPC, weights over the total instruction budget. Mixes and
#: memory behaviours are the modern workload library's own, so a fuzzed
#: "gc" task stresses the same machine paths as ``gc-pause-train``.
_MODERN_SHAPES: dict[str, tuple[tuple[str, float, float, InstructionMix,
                                      MemoryBehavior, float], ...]] = {
    "jit": (
        ("interp-warmup", 0.55, 0.15, modern.INTERP_MIX,
         modern.INTERP_MEMORY, 0.085),
        ("opt-steady", 1.35, 0.45, modern.JITTED_MIX,
         modern.RESIDENT_MEMORY, 0.018),
        ("deopt-storm", 0.55, 0.08, modern.INTERP_MIX,
         modern.INTERP_MEMORY, 0.09),
        ("reopt-steady", 1.35, 0.32, modern.JITTED_MIX,
         modern.RESIDENT_MEMORY, 0.018),
    ),
    "gc": (
        ("mutator-1", 1.18, 0.41, modern.MUTATOR_MIX,
         modern.RESIDENT_MEMORY, 0.035),
        ("gc-mark-1", 0.5, 0.09, modern.GC_MARK_MIX,
         modern.GC_MARK_MEMORY, 0.05),
        ("mutator-2", 1.18, 0.41, modern.MUTATOR_MIX,
         modern.RESIDENT_MEMORY, 0.035),
        ("gc-mark-2", 0.5, 0.09, modern.GC_MARK_MIX,
         modern.GC_MARK_MEMORY, 0.05),
    ),
    "numa": (
        ("local-1", 1.3, 0.30, modern.NUMA_MIX,
         modern.NUMA_LOCAL_MEMORY, 0.02),
        ("remote-1", 0.55, 0.20, modern.NUMA_MIX,
         modern.NUMA_REMOTE_MEMORY, 0.02),
        ("local-2", 1.3, 0.30, modern.NUMA_MIX,
         modern.NUMA_LOCAL_MEMORY, 0.02),
        ("remote-2", 0.55, 0.20, modern.NUMA_MIX,
         modern.NUMA_REMOTE_MEMORY, 0.02),
    ),
    "interp": (
        ("dispatch-loop", 1.0, 1.0, modern.INTERP_MIX,
         modern.INTERP_MEMORY, 0.105),
    ),
    "io": (
        ("user-1", 1.3, 0.28, modern.MUTATOR_MIX,
         modern.RESIDENT_MEMORY, 0.03),
        ("syscall-1", 0.6, 0.22, modern.SYSCALL_MIX,
         modern.IO_MEMORY, 0.05),
        ("user-2", 1.3, 0.28, modern.MUTATOR_MIX,
         modern.RESIDENT_MEMORY, 0.03),
        ("syscall-2", 0.6, 0.22, modern.SYSCALL_MIX,
         modern.IO_MEMORY, 0.05),
    ),
}


def _build_modern(spec: SyntheticSpec, arch: ArchModel) -> Workload:
    """Materialise one modern-archetype spec.

    Finite jobs split the instruction budget across the shape's weighted
    phases; services (infinite duration) run the shape once over a ~60 s
    intro and then pin the final phase open-ended.
    """
    shape = _MODERN_SHAPES[spec.archetype]
    endless = math.isinf(spec.duration)
    budget = (
        60.0 * spec.target_ipc * arch.freq_hz
        if endless
        else spec.target_ipc * arch.freq_hz * spec.duration
    )
    phases = []
    for name, factor, weight, mix, memory, mispredict in shape:
        seed_phase = Phase(
            name=name,
            instructions=budget * weight,
            mix=mix,
            memory=memory,
            branches=BranchBehavior(mispredict_ratio=mispredict),
            noise=0.03,
        )
        phases.append(
            calibrate_phase(arch, seed_phase, spec.target_ipc * factor)
        )
    if endless:
        phases[-1] = phases[-1].with_budget(math.inf)
    return Workload(spec.name, tuple(phases))


def build(
    spec: SyntheticSpec, arch: ArchModel = NEHALEM, *, seed: int = 0
) -> Workload:
    """Materialise one spec into a calibrated workload."""
    if spec.archetype in _MODERN_SHAPES:
        return _build_modern(spec, arch)
    rng = np.random.default_rng((seed, zlib.crc32(spec.name.encode())))
    mix = _mix_for(spec.archetype, rng)
    memory = _memory_for(spec.archetype, rng)
    mispredict = 0.09 if spec.archetype == "branchy" else 0.02
    budget = (
        math.inf
        if math.isinf(spec.duration)
        else spec.target_ipc * arch.freq_hz * spec.duration
    )
    base = Phase(
        name="main",
        instructions=budget,
        mix=mix,
        memory=memory,
        branches=BranchBehavior(mispredict_ratio=mispredict),
        noise=0.03,
    )
    if spec.archetype != "phased":
        return Workload(spec.name, (calibrate_phase(arch, base, spec.target_ipc),))
    # Phased: alternate around the target, finite chunks.
    chunk = (
        budget / 6 if not math.isinf(budget) else 20.0 * arch.freq_hz
    )
    hi = calibrate_phase(arch, base.with_budget(chunk), spec.target_ipc * 1.2)
    lo = calibrate_phase(arch, base.with_budget(chunk), spec.target_ipc * 0.8)
    phases = (hi, lo, hi.with_budget(chunk), lo.with_budget(chunk), hi.with_budget(chunk), lo.with_budget(chunk))
    if math.isinf(budget):
        phases = (*phases[:-1], phases[-1].with_budget(math.inf))
    return Workload(spec.name, phases)
