"""Execute one :class:`~repro.verify.scenario.Scenario` every way that
the oracles compare.

A **tool** scenario runs the sampler against one simulated node four
times, each run rebuilding machine, backend and fault plan from the
scenario alone (no state crosses runs):

* ``base``   — scalar clock advance (``run_for``), batched counter reads.
* ``ticks``  — batched advance (``run_ticks``); must be bitwise equal.
* ``sequential`` — per-handle reads (the backend's ``read_many`` is
  hidden); must agree with the batched read path.
* ``replay`` — a second base run; must be byte-identical (determinism).

A **grid** scenario runs the dispatcher once per engine in
``scenario.engines`` plus one replay — of the chaotic supervised run
when the scenario injects worker faults, of the first engine otherwise —
capturing :meth:`~repro.sim.grid.Grid.conformance_digest` and the
supervision observables (recovery event log, supervisor stats, worker
leak count) from each.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.core.columns import HEALTH_COLUMN, ColumnKind
from repro.core.frame import SnapshotFrame
from repro.core.options import Options
from repro.core.recorder import Recorder
from repro.core.sampler import Sampler
from repro.core.screen import Screen, get_screen
from repro.perf.faults import FaultPlan, FaultSpec, default_specs
from repro.perf.simbackend import SimBackend
from repro.procfs.simproc import SimProcReader
from repro.sim.arch import get_arch
from repro.sim.events import Event
from repro.sim.grid import Grid, NodeSpec, QueueSpec
from repro.sim.machine import SimMachine
from repro.sim.netchaos import NetChaosPlan, NetFaultSpec, default_net_specs
from repro.sim.parallel import node_snapshot
from repro.sim.supervisor import (
    GridFaultPlan,
    GridFaultSpec,
    Supervision,
    default_grid_specs,
)
from repro.sim.workloads.synthetic import SyntheticSpec, build
from repro.verify.scenario import GiB, JobPlan, Scenario, TaskPlan


class _SequentialBackend:
    """Backend proxy hiding ``read_many``: forces the per-handle path."""

    def __init__(self, inner: SimBackend) -> None:
        self._inner = inner

    def __getattr__(self, name: str) -> Any:
        if name == "read_many":
            raise AttributeError(name)
        return getattr(self._inner, name)


@dataclass
class ToolRun:
    """Everything one tool run exposes to the oracles."""

    csv: str
    frames: list[SnapshotFrame]
    health: list[dict[int, str]]
    snapshot: dict[str, Any]
    kernel: list[dict]
    n_events: int
    pmu_width: int
    n_pus: int
    total_threads: int
    opened_total: int
    closed_total: int
    leaked_handles: int
    leaked_counters: int
    read_retries: int
    read_skips: int

    @property
    def multiplexed(self) -> bool:
        """Whether the PMU was too narrow for the screen's event set."""
        return self.n_events > self.pmu_width


@dataclass
class Execution:
    """One scenario, executed every way the oracles compare."""

    scenario: Scenario
    base: ToolRun | None = None
    ticks: ToolRun | None = None
    sequential: ToolRun | None = None
    replay: ToolRun | None = None
    #: Serve run (tool scenarios with ``serve=True``): per-subscriber
    #: reassembled-stream digests plus exact fanout accounting.
    served: dict[str, Any] | None = None
    grid: dict[str, dict[str, Any]] = field(default_factory=dict)
    grid_replay: dict[str, Any] | None = None
    #: Per-engine supervision observables: the deterministic recovery
    #: event log, supervisor stats, and worker-process leak count.
    grid_meta: dict[str, dict[str, Any]] = field(default_factory=dict)
    grid_replay_meta: dict[str, Any] | None = None
    #: Which engine the grid replay re-ran (the chaotic supervised run
    #: when there is one, so recovery itself is proven deterministic).
    grid_replay_engine: str | None = None


# -- tool runs ----------------------------------------------------------------

def _build_machine(scenario: Scenario) -> SimMachine:
    arch = get_arch(scenario.arch)
    if scenario.pmu_width is not None:
        arch = replace(arch, pmu_width=scenario.pmu_width)
    return SimMachine(
        arch,
        sockets=scenario.sockets,
        cores_per_socket=scenario.cores_per_socket,
        tick=scenario.tick,
        seed=scenario.seed,
    )


def _workload(plan: TaskPlan | JobPlan, arch, seed: int):
    spec = SyntheticSpec(
        name=plan.name,
        archetype=plan.archetype,
        target_ipc=plan.target_ipc,
        duration=plan.duration,
        duty_cycle=getattr(plan, "duty_cycle", 1.0),
        nthreads=getattr(plan, "nthreads", 1),
    )
    return build(spec, arch, seed=seed)


def _plan_spawns(scenario: Scenario, machine: SimMachine) -> dict[str, int]:
    """Spawn/arm every task; return the predicted pid of each task.

    Pids are deterministic: the machine hands them out in spawn order and
    each spawn consumes ``nthreads`` ids, so kill timers for tasks that
    spawn later can be armed up front against the predicted pid — exactly
    like a churn script that knows its own arrival order.
    """
    base_arch = get_arch(scenario.arch)
    immediate = [t for t in scenario.tasks if t.spawn_at <= 0.0]
    deferred = sorted(
        (t for t in scenario.tasks if t.spawn_at > 0.0),
        key=lambda t: (t.spawn_at, scenario.tasks.index(t)),
    )
    pids: dict[str, int] = {}
    next_pid = 1000
    for task in immediate + deferred:
        pids[task.name] = next_pid
        next_pid += task.nthreads
    for task in immediate:
        machine.spawn(
            task.name,
            _workload(task, base_arch, scenario.seed),
            user=task.name,
            uid=task.uid,
            nthreads=task.nthreads,
            duty_cycle=task.duty_cycle,
        )
    for task in deferred:
        machine.spawn_at(
            task.spawn_at,
            task.name,
            _workload(task, base_arch, scenario.seed),
            user=task.name,
            uid=task.uid,
            nthreads=task.nthreads,
            duty_cycle=task.duty_cycle,
        )
    for task in scenario.tasks:
        if task.kill_at is not None:
            machine.kill_at(task.kill_at, pids[task.name])
    return pids


def _fault_plan(scenario: Scenario) -> FaultPlan | None:
    specs: tuple[FaultSpec, ...] = ()
    if scenario.chaos_seed is not None:
        specs = default_specs(scenario.chaos_intensity)
    specs += tuple(
        FaultSpec(
            op=f.op,
            error=f.error,
            rate=f.rate,
            at_calls=frozenset(f.at_calls) if f.at_calls is not None else None,
        )
        for f in scenario.faults
    )
    if not specs:
        return None
    seed = scenario.chaos_seed if scenario.chaos_seed is not None else scenario.seed
    return FaultPlan(seed, specs)


def _screen_for(scenario: Scenario, chaotic: bool) -> Screen:
    screen = get_screen(scenario.screen)
    if chaotic and not any(
        c.kind is ColumnKind.HEALTH for c in screen.columns
    ):
        screen = screen.with_columns(HEALTH_COLUMN)
    return screen


def run_tool(
    scenario: Scenario,
    *,
    advance: str = "scalar",
    sequential: bool = False,
) -> ToolRun:
    """One full sampling run of a tool scenario (see module docstring).

    Args:
        advance: "scalar" steps the clock with ``run_for``; "ticks" uses
            the batched ``run_ticks`` path (the scenario guarantees the
            delay is a whole number of ticks).
        sequential: hide the backend's ``read_many`` so every counter is
            read through the per-handle path.
    """
    machine = _build_machine(scenario)
    _plan_spawns(scenario, machine)
    plan = _fault_plan(scenario)
    backend = SimBackend(machine, scenario.monitor_uid, faults=plan)
    reader = SimProcReader(machine)
    screen = _screen_for(scenario, plan is not None)
    options = Options(
        delay=scenario.delay,
        iterations=scenario.iterations,
        per_thread=scenario.per_thread,
    )
    sampler = Sampler(
        _SequentialBackend(backend) if sequential else backend,
        reader,
        screen,
        options,
    )
    recorder = Recorder()
    frames: list[SnapshotFrame] = []
    health: list[dict[int, str]] = []
    ticks_per_delay = round(scenario.delay / scenario.tick)
    sampler.sample_frame()  # baseline: attach, zero-length interval
    for _ in range(scenario.iterations):
        if advance == "ticks":
            machine.run_ticks(ticks_per_delay)
        else:
            machine.run_for(scenario.delay)
        frame = sampler.sample_frame()
        frames.append(frame)
        recorder.record_frame(frame)
        labels = frame.labels.get(HEALTH_COLUMN.header, ())
        health.append(dict(zip(frame.tids.tolist(), labels)))
    kernel = backend.live_handles()
    snapshot = node_snapshot(machine)
    sampler.close()
    return ToolRun(
        csv=recorder.to_csv(),
        frames=frames,
        health=health,
        snapshot=snapshot,
        kernel=kernel,
        n_events=len(screen.required_events()),
        pmu_width=machine.arch.pmu_width,
        n_pus=len(machine.topology.pus),
        total_threads=sum(t.nthreads for t in scenario.tasks),
        opened_total=backend.opened_total,
        closed_total=backend.closed_total,
        leaked_handles=backend.open_handle_count(),
        leaked_counters=machine.counters.open_count(),
        read_retries=sampler.read_retries,
        read_skips=sampler.read_skips,
    )


def run_served(scenario: Scenario) -> dict[str, Any]:
    """Serve one tool scenario over localhost TCP to three subscribers.

    The daemon rebuilds machine, backend and fault plan from the scenario
    exactly as :func:`run_tool` does and replicates its cadence (baseline
    sample, then ``run_for(delay)`` + sample per iteration), so an
    unfiltered subscriber's reassembled stream must be bitwise-equal to a
    solo run's frames — that comparison is the ``served-stream`` oracle's
    job. Subscribers: one total, one row-filtered to the scenario's first
    task, one with a server-side derived column over the screen's first
    event.

    When the scenario configures net chaos, the daemon runs under the
    seeded link-cut schedule and every subscriber auto-reconnects with
    resume-by-seq — the bitwise bar against the solo run is unchanged;
    only the path to it now crosses severed connections.

    Returns one dict per client: its subscription (as JSON data), the
    canonical digest of every received frame, the sequence numbers, the
    client's gap count, reconnect count, and the daemon's BYE
    accounting; plus the daemon's cut count under ``net_cuts``.
    """
    import asyncio

    from repro.core.expr import canonical_name
    from repro.serve.client import collect
    from repro.serve.daemon import CollectorDaemon
    from repro.serve.protocol import frame_digest
    from repro.serve.session import Subscription
    from repro.util.backoff import BackoffPolicy

    machine = _build_machine(scenario)
    _plan_spawns(scenario, machine)
    plan = _fault_plan(scenario)
    backend = SimBackend(machine, scenario.monitor_uid, faults=plan)
    reader = SimProcReader(machine)
    screen = _screen_for(scenario, plan is not None)
    options = Options(
        delay=scenario.delay,
        iterations=scenario.iterations,
        per_thread=scenario.per_thread,
    )
    sampler = Sampler(backend, reader, screen, options)
    subs: dict[str, Any] = {"total": Subscription()}
    if scenario.tasks:
        subs["filtered"] = Subscription(
            comms=frozenset({scenario.tasks[0].name})
        )
    events = screen.required_events()
    if events:
        subs["derived"] = Subscription(
            exprs=(
                ("X_SERVE", f"{canonical_name(events[0].name)} / delta_t"),
            )
        )
    netchaos = _net_chaos_plan(scenario)
    daemon = CollectorDaemon(
        sampler,
        advance=lambda: machine.run_for(scenario.delay),
        iterations=scenario.iterations,
        min_clients=len(subs),
        netchaos=netchaos,
    )
    # Under link cuts the clients must survive and resume; without them
    # the old die-on-cut shape keeps the daemon honest about BYEs.
    reconnect = netchaos is not None
    ladder = BackoffPolicy(base=0.0)  # in-process: nothing to wait out

    async def go() -> list:
        port = await daemon.start()
        results, _ = await asyncio.gather(
            asyncio.gather(
                *(
                    collect(
                        "127.0.0.1",
                        port,
                        client_id=name,
                        subscription=sub,
                        reconnect=reconnect,
                        backoff=ladder,
                        max_reconnects=64,
                    )
                    for name, sub in subs.items()
                )
            ),
            daemon.run(),
        )
        await daemon.close()
        return results

    results = asyncio.run(go())
    clients: dict[str, Any] = {}
    for (name, sub), (received, client) in zip(subs.items(), results):
        clients[name] = {
            "subscription": sub.to_dict(),
            "digests": [frame_digest(frame) for _, frame in received],
            "seqs": [seq for seq, _ in received],
            "gaps": client.gaps,
            "reconnects": client.reconnects,
            "stats": (client.bye or {}).get("stats"),
        }
    return {
        "clients": clients,
        "hub": daemon.hub.stats(),
        "net_cuts": daemon.net_cuts,
    }


#: Events the bare-machine equivalence oracle opens on every immediate
#: task: enough to exercise the counter columns without assuming anything
#: about the scenario's screen.
MACHINE_ORACLE_EVENTS = (Event.INSTRUCTIONS, Event.CYCLES, Event.CACHE_MISSES)


def run_machine(scenario: Scenario, *, advance: str = "scalar") -> dict[str, Any]:
    """One bare-machine run of a tool scenario: no sampler, no faults.

    Spawns the scenario's tasks (timers, kills and duty cycles included),
    opens :data:`MACHINE_ORACLE_EVENTS` on each immediately-spawned task,
    advances the clock in the scenario's delay cadence through either the
    scalar ``_step`` reference (``advance="scalar"``) or the columnar
    ``run_ticks`` kernel (``advance="ticks"``), and returns the full node
    snapshot — the scalar-vs-columnar oracle's raw material, deeper than
    the tool runs because nothing in the sampler stack can mask a
    scheduler-state divergence.
    """
    machine = _build_machine(scenario)
    pids = _plan_spawns(scenario, machine)
    for task in scenario.tasks:
        if task.spawn_at <= 0.0:
            for event in MACHINE_ORACLE_EVENTS:
                machine.counters.open(event, pids[task.name], 0)
    ticks_per_delay = round(scenario.delay / scenario.tick)
    for _ in range(scenario.iterations):
        if advance == "ticks":
            machine.run_ticks(ticks_per_delay)
        else:
            for _ in range(ticks_per_delay):
                machine._step(machine.tick)
    return node_snapshot(machine)


# -- grid runs ----------------------------------------------------------------

def _grid_chaos_plan(scenario: Scenario) -> GridFaultPlan | None:
    """The scenario's worker-fault plan (mirrors :func:`_fault_plan`)."""
    specs: tuple[GridFaultSpec, ...] = ()
    if scenario.grid_chaos_seed is not None:
        specs = default_grid_specs(scenario.grid_chaos_intensity)
    specs += tuple(
        GridFaultSpec(
            kind=f.kind,
            rate=f.rate,
            at_epochs=(
                frozenset(f.at_epochs) if f.at_epochs is not None else None
            ),
            worker=f.worker,
            persistent=f.persistent,
        )
        for f in scenario.grid_faults
    )
    if not specs:
        return None
    seed = (
        scenario.grid_chaos_seed
        if scenario.grid_chaos_seed is not None
        else scenario.seed
    )
    return GridFaultPlan(seed, specs)


def _net_chaos_plan(scenario: Scenario) -> NetChaosPlan | None:
    """The scenario's link-fault plan (mirrors :func:`_grid_chaos_plan`)."""
    specs: tuple[NetFaultSpec, ...] = ()
    if scenario.net_chaos_seed is not None:
        specs = default_net_specs(scenario.net_chaos_intensity)
    specs += tuple(
        NetFaultSpec(
            kind=f.kind,
            rate=f.rate,
            at_epochs=(
                frozenset(f.at_epochs) if f.at_epochs is not None else None
            ),
            link=f.link,
            duration=f.duration,
            latency=f.latency,
        )
        for f in scenario.net_faults
    )
    if not specs:
        return None
    seed = (
        scenario.net_chaos_seed
        if scenario.net_chaos_seed is not None
        else scenario.seed
    )
    return NetChaosPlan(seed, specs)


def run_grid(
    scenario: Scenario, engine: str, transport: str | None = None
) -> tuple[dict[str, Any], dict[str, Any]]:
    """Drive one grid scenario through ``engine``.

    Returns ``(digest, meta)``: the grid's conformance digest plus the
    supervision observables of the run — the deterministic recovery
    event log, supervisor stats, and how many worker processes were
    still alive after ``close()`` (leak freedom). Chaos, when the
    scenario configures it, is applied to the supervised engine only;
    every other engine runs clean and serves as the recovery reference.
    ``transport`` pins the shard transport (the transport-invariance
    sweep); the "fleet" engine always runs clean over two hosts.
    """
    arch = get_arch(scenario.arch)
    specs = [
        NodeSpec(
            name=f"n{i:02d}",
            arch=arch,
            sockets=scenario.sockets,
            cores_per_socket=scenario.cores_per_socket,
            memory_bytes=16 * GiB,
        )
        for i in range(scenario.n_nodes)
    ]
    queues = [
        QueueSpec(
            name=q.name,
            max_wallclock=q.max_wallclock,
            memory_limit=q.memory_limit,
            priority=q.priority,
            preempting=q.preempting,
        )
        for q in scenario.queues
    ]
    ordered = sorted(
        scenario.jobs, key=lambda j: (j.submit_at, scenario.jobs.index(j))
    )
    chaos = netchaos = supervision = None
    if engine == "supervised":
        chaos = _grid_chaos_plan(scenario)
        netchaos = _net_chaos_plan(scenario)
        # No backoff sleep: recovery wall time stays bounded in fuzz
        # runs, and determinism never depends on sleeping anyway.
        supervision = Supervision(
            deadline=scenario.epoch_deadline,
            restart_budget=scenario.restart_budget,
            backoff_base=0.0,
        )
    grid = Grid(
        specs,
        queues,
        tick=scenario.tick,
        seed=scenario.seed,
        workers=scenario.workers,
        engine=engine,
        grid_chaos=chaos,
        net_chaos=netchaos,
        supervision=supervision,
        transport=transport,
        hosts=2 if engine == "fleet" else None,
    )
    try:
        for job in ordered:
            if job.submit_at > grid.now + 1e-12:
                grid.run_for(job.submit_at - grid.now)
            grid.submit(
                job.name,
                _workload(job, arch, scenario.seed),
                user="verify",
                queue=job.queue,
                memory_bytes=job.memory_bytes,
                priority=job.priority,
            )
        if scenario.span > grid.now + 1e-12:
            grid.run_for(scenario.span - grid.now)
        digest = grid.conformance_digest()
    finally:
        procs = list(getattr(grid.engine, "_procs", []))
        grid.close()
    sup_stats = getattr(grid.engine, "stats", {})
    engine_obj = grid.engine
    meta = {
        "engine": engine,
        "events": grid.supervisor_events,
        "stats": {
            **{
                k: sup_stats.get(k, 0)
                for k in ("restarts", "replayed_epochs", "adopted_shards")
            },
            "degraded": bool(sup_stats.get("degraded", False)),
            "failures": dict(sup_stats.get("failures", {})),
            # Split-brain observables: injected link faults and the
            # stale replies the epoch fence rejected (0 on clean runs
            # and on engines without a supervision tree).
            "net_faults": (
                engine_obj.net_faults()
                if hasattr(engine_obj, "net_faults")
                else 0
            ),
            "fenced_replies": (
                engine_obj.fenced_replies()
                if hasattr(engine_obj, "fenced_replies")
                else 0
            ),
        },
        "leaked_workers": sum(1 for p in procs if p.is_alive()),
    }
    return digest, meta


# -- the full execution -------------------------------------------------------

def execute(scenario: Scenario) -> Execution:
    """Run ``scenario`` through every implementation pair the oracles
    compare (four tool runs, or one grid run per engine plus a replay)."""
    ex = Execution(scenario=scenario)
    if scenario.kind == "tool":
        ex.base = run_tool(scenario)
        ex.ticks = run_tool(scenario, advance="ticks")
        ex.sequential = run_tool(scenario, sequential=True)
        ex.replay = run_tool(scenario)
        if scenario.serve:
            ex.served = run_served(scenario)
    else:
        for engine in scenario.engines:
            ex.grid[engine], ex.grid_meta[engine] = run_grid(scenario, engine)
        # Transport-invariance sweep: the sharded engine re-runs once per
        # listed transport; the keys join the engines-agree comparison.
        for t in scenario.transports:
            key = f"sharded+{t}"
            ex.grid[key], ex.grid_meta[key] = run_grid(
                scenario, "sharded", transport=t
            )
        # Replay the chaotic supervised run when there is one: recovery
        # (not just clean execution) must be byte-deterministic. Link
        # chaos counts — partition healing and fencing must replay too.
        replay_engine = scenario.engines[0]
        if (
            scenario.grid_chaotic or scenario.net_chaotic
        ) and "supervised" in scenario.engines:
            replay_engine = "supervised"
        ex.grid_replay_engine = replay_engine
        ex.grid_replay, ex.grid_replay_meta = run_grid(scenario, replay_engine)
    return ex
