"""The chaos sweep: many seeds, zero crashes, zero leaks — plus the
``--chaos SEED`` replay guarantee at the TipTop and CLI layers.

This is the CI smoke version of the acceptance gate: 50 seeded fault
plans drive the full application loop (spawn/kill churn included) and
every run must complete with no unhandled exception and a balanced
open/close ledger.
"""

from __future__ import annotations

import math

import pytest

from repro.core import cli
from repro.core.app import SimHost, TipTop
from repro.core.options import Options
from repro.perf.faults import FaultPlan, default_specs
from repro.sim import NEHALEM, SimMachine
from repro.sim.branch import BranchBehavior
from repro.sim.cache import MemoryBehavior
from repro.sim.isa import InstructionMix
from repro.sim.workload import Phase, Workload

ENDLESS = Workload(
    "endless",
    (
        Phase(
            name="steady",
            instructions=math.inf,
            mix=InstructionMix.of(
                int_alu=0.5, load=0.2, store=0.05, branch=0.15, fp_sse=0.1
            ),
            memory=MemoryBehavior(working_set=1 * 1024 * 1024),
            branches=BranchBehavior(mispredict_ratio=0.02),
            exec_cpi=0.5,
            noise=0.0,
        ),
    ),
)

SWEEP_SEEDS = 50


def make_host(faults: FaultPlan | None) -> SimHost:
    machine = SimMachine(NEHALEM, sockets=1, cores_per_socket=2, tick=0.5,
                         seed=17)
    for i in range(3):
        machine.spawn(f"job{i}", ENDLESS)
    # Mid-run churn: one arrival, one departure, via the machine's own
    # timer queue (fires inside the tick loop, like real job turnover).
    machine.spawn_at(1.2, "late", ENDLESS)
    machine.kill_at(2.2, 1001)
    return SimHost(machine, faults=faults)


@pytest.mark.parametrize("seed", range(SWEEP_SEEDS))
def test_sweep_seed_completes_without_leaks(seed):
    host = make_host(FaultPlan(seed, default_specs(2.0)))
    options = Options(delay=1.0, batch=True, chaos=seed)
    with TipTop(host, options) as app:
        blocks = app.run_batch(4)
    assert len(blocks) == 4
    backend = host.backend
    assert backend.opened_total == backend.closed_total
    assert backend.open_handle_count() == 0
    assert host.machine.counters.open_count() == 0


def test_sweep_actually_injects_faults():
    """The sweep must not pass vacuously: across the seeds, faults fire."""
    fired = 0
    for seed in range(10):
        host = make_host(FaultPlan(seed, default_specs(2.0)))
        with TipTop(host, Options(delay=1.0, batch=True, chaos=seed)) as app:
            app.run_batch(4)
        fired += host.backend.faults.stats.total_injected()
    assert fired > 0


class TestReplay:
    def test_tiptop_chaos_replays_byte_identically(self):
        def run(seed: int) -> list[str]:
            host = make_host(None)  # TipTop seeds the plan from options
            options = Options(delay=1.0, batch=True, chaos=seed)
            with TipTop(host, options) as app:
                return app.run_batch(4)

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_chaos_adds_health_column_once(self):
        host = make_host(None)
        with TipTop(host, Options(chaos=3)) as app:
            headers = [c.header for c in app.screen.columns]
        assert headers.count("HEALTH") == 1

    def test_cli_chaos_replays_byte_identically(self, capsys):
        argv = ["-b", "--sim", "-n", "2", "--chaos", "7"]
        assert cli.main(argv) == 0
        first = capsys.readouterr().out
        assert cli.main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "HEALTH" in first

    def test_cli_chaos_requires_sim(self, capsys):
        assert cli.main(["-b", "--chaos", "7", "-n", "1"]) == 2
        err = capsys.readouterr().err
        assert "--sim" in err
