"""PAPI-style preset event names.

§4: "PAPI also abstracts common events and provides a convenient
cross-platform standard naming for many useful events, such as cycle
count, floating point instructions, etc." Tools and scripts written
against PAPI names should work against this backend unchanged, so the
standard presets resolve to our events.
"""

from __future__ import annotations

from repro.errors import EventError
from repro.perf.events import EventSpec, resolve_event
from repro.sim.arch import ArchModel

#: PAPI preset -> canonical event name.
PAPI_PRESETS: dict[str, str] = {
    "PAPI_TOT_CYC": "cycles",
    "PAPI_TOT_INS": "instructions",
    "PAPI_REF_CYC": "bus-cycles",
    "PAPI_L1_DCA": "l1d-accesses",
    "PAPI_L1_DCM": "l1d-misses",
    "PAPI_L2_TCA": "l2-accesses",
    "PAPI_L2_TCM": "l2-misses",
    "PAPI_L3_TCA": "l3-accesses",
    "PAPI_L3_TCM": "l3-misses",
    "PAPI_BR_INS": "branch-instructions",
    "PAPI_BR_MSP": "branch-misses",
    "PAPI_LD_INS": "loads",
    "PAPI_SR_INS": "stores",
    "PAPI_FP_INS": "fp-operations",
    "PAPI_FP_OPS": "fp-operations",
    "PAPI_CSW": "context-switches",
}


def papi_names() -> list[str]:
    """All supported PAPI preset names."""
    return sorted(PAPI_PRESETS)


def resolve_papi(name: str, arch: ArchModel | None = None) -> EventSpec:
    """Resolve a PAPI preset to an event spec.

    Args:
        name: a ``PAPI_*`` preset (case-insensitive).
        arch: optionally gate on the architecture's PMU.

    Raises:
        EventError: unknown preset, or unsupported on ``arch``.
    """
    key = name.strip().upper()
    canonical = PAPI_PRESETS.get(key)
    if canonical is None:
        raise EventError(
            f"unknown PAPI preset {name!r}; known: {papi_names()}"
        )
    return resolve_event(canonical, arch)
