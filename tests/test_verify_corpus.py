"""Replay the committed scenario corpus through every oracle.

``tests/corpus/*.json`` holds curated scenarios pinning the interesting
regimes the fuzzer only hits probabilistically: fault storms, fd
exhaustion, multiplexing pressure, per-thread churn, mixed permissions,
mid-run deaths, read starvation, grid queueing and the sharded engine.
The PR-gating CI job replays exactly this corpus; the nightly job fuzzes
fresh seeds on top.
"""

from pathlib import Path

import pytest

from repro.verify import check_scenario
from repro.verify.scenario import Scenario

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS = sorted(CORPUS_DIR.glob("*.json"))


def _name(path: Path) -> str:
    return path.stem


def test_corpus_is_present():
    assert len(CORPUS) >= 10


@pytest.mark.parametrize("path", CORPUS, ids=_name)
def test_corpus_round_trips(path):
    """Committed files are canonical ``to_json`` output — reparsing and
    reserialising reproduces the file byte for byte."""
    text = path.read_text()
    scenario = Scenario.from_json(text)
    assert scenario.to_json() + "\n" == text


@pytest.mark.parametrize("path", CORPUS, ids=_name)
def test_corpus_passes_all_oracles(path):
    scenario = Scenario.from_json(path.read_text())
    violations = check_scenario(scenario)
    assert violations == [], "\n".join(
        f"[{v.oracle}] {v.message}" for v in violations
    )


def test_corpus_covers_both_kinds():
    kinds = {Scenario.from_json(p.read_text()).kind for p in CORPUS}
    assert kinds == {"tool", "grid"}


def test_corpus_covers_chaos_and_quiet():
    chaotic = [Scenario.from_json(p.read_text()).chaotic for p in CORPUS]
    assert any(chaotic) and not all(chaotic)
