"""Expression language."""

import math

import pytest

from repro.core.expr import Expression, canonical_name
from repro.errors import ExprError


class TestParsing:
    def test_number(self):
        assert Expression("42").evaluate({}) == 42.0

    def test_float_and_scientific(self):
        assert Expression("2.5e3").evaluate({}) == 2500.0
        assert Expression("1e-2").evaluate({}) == 0.01

    def test_identifier(self):
        assert Expression("cycles").evaluate({"cycles": 7.0}) == 7.0

    def test_precedence(self):
        assert Expression("2 + 3 * 4").evaluate({}) == 14.0

    def test_parens(self):
        assert Expression("(2 + 3) * 4").evaluate({}) == 20.0

    def test_unary_minus(self):
        assert Expression("-3 + 5").evaluate({}) == 2.0
        assert Expression("--4").evaluate({}) == 4.0

    def test_left_associative_division(self):
        assert Expression("8 / 4 / 2").evaluate({}) == 1.0

    def test_whitespace_insensitive(self):
        assert Expression("  1+ 2 ").evaluate({}) == 3.0

    def test_trailing_garbage(self):
        with pytest.raises(ExprError):
            Expression("1 + 2 @")

    def test_unbalanced_parens(self):
        with pytest.raises(ExprError):
            Expression("(1 + 2")

    def test_empty_fails(self):
        with pytest.raises(ExprError):
            Expression("")

    def test_dangling_operator(self):
        with pytest.raises(ExprError):
            Expression("1 +")


class TestEvaluation:
    def test_ipc_formula(self):
        e = Expression("instructions / cycles")
        assert e.evaluate({"instructions": 300.0, "cycles": 200.0}) == 1.5

    def test_dmis_formula(self):
        e = Expression("100 * cache_misses / instructions")
        assert e.evaluate({"cache_misses": 9.0, "instructions": 1000.0}) == 0.9

    def test_division_by_zero_is_nan(self):
        e = Expression("1 / x")
        assert math.isnan(e.evaluate({"x": 0.0}))

    def test_missing_identifier_raises(self):
        e = Expression("cycles")
        with pytest.raises(ExprError):
            e.evaluate({})

    def test_variables_collected(self):
        e = Expression("100 * a / (b + c)")
        assert e.variables == frozenset({"a", "b", "c"})

    def test_case_normalised(self):
        e = Expression("Cycles + CYCLES")
        assert e.variables == frozenset({"cycles"})
        assert e.evaluate({"cycles": 1.0}) == 2.0


class TestCanonicalName:
    def test_dashes_become_underscores(self):
        assert canonical_name("cache-misses") == "cache_misses"

    def test_lowercases(self):
        assert canonical_name("FP-Assist") == "fp_assist"
