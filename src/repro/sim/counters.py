"""Per-task hardware-counter state kept by the simulated kernel.

Models the kernel side of ``perf_event``: each open counter targets one
task and one event, accumulates while the task is scheduled *and* the
counter is programmed into the PMU, and tracks ``time_enabled`` /
``time_running`` exactly as Linux reports them so that user space can scale
multiplexed counts (``value * time_enabled / time_running``).

Storage is columnar: the accumulator and both kernel clocks of every open
counter live in the table's :class:`~repro.sim.columns.CounterColumns`
arrays, and a :class:`KernelCounter` is a slotted handle whose properties
index into them. The scalar accrual paths below and the vectorized
:class:`~repro.sim.columns.ColumnKernel` therefore mutate the *same*
storage — reads are always served incrementally from the columns, never
recomputed, regardless of which path advanced the clock.

Multiplexing: when a task has more enabled counters than the PMU width
(sixteen on the modelled Xeon W3550, §2.6), the kernel rotates a window of
``pmu_width`` counters one position per tick — the same round-robin
behaviour Linux exhibits.

Counting vs sampling (§2.5/§4): a counter opened with a ``sample_period``
runs in *sampling* mode — the PMU interrupts every ``period`` events and
the kernel tallies samples, so the reported value is quantised to the
period and loses occasional samples to interrupt coalescing/throttling
(Moore [29] compares the two modes' accuracy; tiptop itself uses
counting). The loss process is deterministic per table seed.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import CounterStateError
from repro.sim.columns import CounterColumns
from repro.sim.events import EVENT_CODE, Event

#: Probability that one sampling interrupt is lost (coalescing/throttling).
SAMPLE_LOSS_PROBABILITY = 0.002


class KernelCounter:
    """Kernel-side state of one opened counter.

    The hot fields (``value``, ``time_enabled``, ``time_running``,
    ``enabled``) are properties into one slot of the owning table's
    :class:`~repro.sim.columns.CounterColumns`; everything else lives on
    the handle itself. Closed counters are detached onto a private
    single-slot column so their final reading stays stable while the
    shared slot is recycled.

    Attributes:
        counter_id: fd-like handle returned to user space.
        event: the counted hardware event.
        tid: target thread id.
        owner_uid: uid of the opening user (permission checks happen at
            open time in the backend).
        closed: handle has been released.
        sample_period: None for counting mode; otherwise the PMU interrupt
            period in events.
        samples: sampling-mode interrupts delivered so far.
    """

    __slots__ = (
        "counter_id",
        "event",
        "tid",
        "owner_uid",
        "closed",
        "sample_period",
        "samples",
        "_carry",
        "_cols",
        "_slot",
    )

    def __init__(
        self,
        counter_id: int,
        event: Event,
        tid: int,
        owner_uid: int,
        *,
        sample_period: int | None = None,
        columns: CounterColumns | None = None,
        slot: int | None = None,
    ) -> None:
        if columns is None:
            # Standalone counter (tests, ad-hoc use): own a private slot.
            columns = CounterColumns(capacity=1)
            slot = columns.alloc()
        assert slot is not None
        self.counter_id = counter_id
        self.event = event
        self.tid = tid
        self.owner_uid = owner_uid
        self.closed = False
        self.sample_period = sample_period
        self.samples = 0
        self._carry = 0.0
        self._cols = columns
        self._slot = slot

    # -- column-backed hot state ------------------------------------------
    @property
    def value(self) -> float:
        """Accumulated event count (sampling mode: samples x period)."""
        return float(self._cols.value[self._slot])

    @value.setter
    def value(self, v: float) -> None:
        self._cols.value[self._slot] = v

    @property
    def time_enabled(self) -> float:
        """Seconds the counter was enabled with a live target."""
        return float(self._cols.time_enabled[self._slot])

    @time_enabled.setter
    def time_enabled(self, v: float) -> None:
        self._cols.time_enabled[self._slot] = v

    @property
    def time_running(self) -> float:
        """Seconds the event was actually counted (target scheduled and
        counter resident in the PMU)."""
        return float(self._cols.time_running[self._slot])

    @time_running.setter
    def time_running(self, v: float) -> None:
        self._cols.time_running[self._slot] = v

    @property
    def enabled(self) -> bool:
        """Counting is armed."""
        return bool(self._cols.enabled[self._slot])

    @enabled.setter
    def enabled(self, v: bool) -> None:
        cols = self._cols
        if bool(cols.enabled[self._slot]) != bool(v):
            cols.enabled[self._slot] = bool(v)
            # Enabled bits participate in the per-tid slot caches.
            cols.version += 1

    @property
    def sampling(self) -> bool:
        """True when the counter runs in sampling mode."""
        return self.sample_period is not None

    def reading(self) -> tuple[int, float, float]:
        """Snapshot as (value, time_enabled, time_running), served from
        the accumulator columns.

        Raises:
            CounterStateError: on a closed counter.
        """
        if self.closed:
            raise CounterStateError(f"counter {self.counter_id} is closed")
        cols, slot = self._cols, self._slot
        return (
            int(cols.value[slot]),
            float(cols.time_enabled[slot]),
            float(cols.time_running[slot]),
        )

    def _detach(self) -> None:
        """Move this counter's state onto a private slot (at close)."""
        shared, slot = self._cols, self._slot
        mini = CounterColumns(capacity=1)
        s = mini.alloc()
        mini.value[s] = shared.value[slot]
        mini.time_enabled[s] = shared.time_enabled[slot]
        mini.time_running[s] = shared.time_running[slot]
        mini.enabled[s] = shared.enabled[slot]
        self._cols, self._slot = mini, s
        shared.free(slot)


class CounterTable:
    """All open counters of the simulated kernel, indexed by task.

    Args:
        pmu_width: number of simultaneously countable events per task.
    """

    def __init__(self, pmu_width: int, seed: int = 0) -> None:
        if pmu_width < 1:
            raise CounterStateError(f"pmu_width must be >= 1, got {pmu_width}")
        self.pmu_width = pmu_width
        self.columns = CounterColumns()
        self._ids = itertools.count(3)  # skip fds 0-2, like a real process
        self._by_id: dict[int, KernelCounter] = {}
        self._by_tid: dict[int, list[KernelCounter]] = {}
        self._rotation: dict[int, int] = {}
        self._rng = np.random.default_rng((seed, 0xC0))
        # Memo for advance_idle: (time_enabled, dt, ticks) -> folded clock.
        # Counters attached at the same instant share time_enabled, so one
        # fold serves a whole cohort.
        self._clock_cache: dict[tuple[float, float, int], float] = {}
        # tid -> (columns.version, slots, codes, simple). ``simple`` means
        # the vector fast path may accrue this tid: every counter enabled,
        # none sampling, and the set fits the PMU without multiplexing.
        self._tid_cache: dict[int, tuple[int, np.ndarray, np.ndarray, bool]] = {}

    def open(
        self,
        event: Event,
        tid: int,
        owner_uid: int,
        *,
        sample_period: int | None = None,
    ) -> KernelCounter:
        """Create a counter on ``tid`` and return it (enabled by default).

        Raises:
            CounterStateError: for a non-positive sample period.
        """
        if sample_period is not None and sample_period < 1:
            raise CounterStateError(
                f"sample_period must be >= 1, got {sample_period}"
            )
        counter = KernelCounter(
            counter_id=next(self._ids),
            event=event,
            tid=tid,
            owner_uid=owner_uid,
            sample_period=sample_period,
            columns=self.columns,
            slot=self.columns.alloc(),
        )
        self._by_id[counter.counter_id] = counter
        self._by_tid.setdefault(tid, []).append(counter)
        self._rotation.setdefault(tid, 0)
        return counter

    def get(self, counter_id: int) -> KernelCounter:
        """Look up a counter by handle.

        Raises:
            CounterStateError: for an unknown or closed handle.
        """
        try:
            counter = self._by_id[counter_id]
        except KeyError as exc:
            raise CounterStateError(f"no such counter {counter_id}") from exc
        if counter.closed:
            raise CounterStateError(f"counter {counter_id} is closed")
        return counter

    def close(self, counter_id: int) -> None:
        """Release a counter handle (idempotent errors raise)."""
        counter = self.get(counter_id)
        counter.closed = True
        counter.enabled = False
        self._by_tid[counter.tid].remove(counter)
        del self._by_id[counter_id]
        counter._detach()

    def counters_for(self, tid: int) -> list[KernelCounter]:
        """Open counters targeting ``tid`` (may be empty)."""
        return list(self._by_tid.get(tid, ()))

    def tid_slots(self, tid: int) -> tuple[np.ndarray, np.ndarray, bool]:
        """Column slots, event codes and fast-path eligibility for ``tid``.

        Cached against ``columns.version``, which moves on every open,
        close, and enable/disable toggle. ``simple`` is True when the
        vectorized accrual path reproduces the scalar one exactly for this
        tid: all counters enabled (the active window is the whole set), no
        sampling counters (whose RNG draws must stay in scalar order), and
        no multiplexing rotation.
        """
        entry = self._tid_cache.get(tid)
        version = self.columns.version
        if entry is not None and entry[0] == version:
            return entry[1], entry[2], entry[3]
        counters = self._by_tid.get(tid, ())
        slots = np.fromiter(
            (c._slot for c in counters), dtype=np.intp, count=len(counters)
        )
        codes = np.fromiter(
            (EVENT_CODE[c.event] for c in counters),
            dtype=np.intp,
            count=len(counters),
        )
        simple = (
            len(counters) <= self.pmu_width
            and all(c.enabled for c in counters)
            and not any(c.sampling for c in counters)
        )
        self._tid_cache[tid] = (version, slots, codes, simple)
        return slots, codes, simple

    def _active_window(self, tid: int) -> set[int]:
        """Handles currently resident in the PMU for ``tid``."""
        counters = [c for c in self._by_tid.get(tid, ()) if c.enabled]
        if len(counters) <= self.pmu_width:
            return {c.counter_id for c in counters}
        start = self._rotation.get(tid, 0) % len(counters)
        window = [
            counters[(start + i) % len(counters)] for i in range(self.pmu_width)
        ]
        return {c.counter_id for c in window}

    def rotate(self, tid: int) -> None:
        """Advance the multiplexing window of ``tid`` by one counter."""
        self._rotation[tid] = self._rotation.get(tid, 0) + 1

    def accrue(
        self,
        tid: int,
        deltas: dict[Event, float],
        *,
        wall_dt: float,
        scheduled_dt: float,
        alive: bool,
    ) -> None:
        """Fold one tick's events into the counters of ``tid``.

        Args:
            tid: target thread.
            deltas: event counts produced during the tick (already scaled by
                the scheduled time; zero-filled events may be omitted).
            wall_dt: tick duration (advances ``time_enabled``).
            scheduled_dt: seconds the task was actually on a PU.
            alive: whether the task is still alive (dead tasks freeze).
        """
        counters = self._by_tid.get(tid)
        if not counters:
            return
        window = self._active_window(tid)
        for counter in counters:
            if not counter.enabled or not alive:
                continue
            counter.time_enabled += wall_dt
            if counter.counter_id in window and scheduled_dt > 0:
                counter.time_running += scheduled_dt
                delta = deltas.get(counter.event, 0.0)
                if counter.sampling:
                    self._accrue_sampled(counter, delta)
                else:
                    counter.value += delta
        if len([c for c in counters if c.enabled]) > self.pmu_width:
            self.rotate(tid)

    def advance_idle(self, tid: int, dt: float, ticks: int) -> None:
        """Batch-apply ``ticks`` idle accruals to the counters of ``tid``.

        Bitwise-equivalent to ``ticks`` consecutive
        ``accrue(tid, {}, wall_dt=dt, scheduled_dt=0.0, alive=True)`` calls:
        each enabled counter's ``time_enabled`` advances through the same
        sequence of float additions (folded once per distinct starting
        value and memoised), ``time_running``/``value`` stay put because the
        task never ran, and the multiplexing window rotates once per tick.
        The caller must guarantee the enabled set does not change across the
        covered ticks.
        """
        if ticks <= 0:
            return
        counters = self._by_tid.get(tid)
        if not counters:
            return
        cols = self.columns
        slots, _codes, _simple = self.tid_slots(tid)
        enabled_slots = slots[cols.enabled[slots]]
        if enabled_slots.size:
            starts = cols.time_enabled[enabled_slots]
            first = float(starts[0])
            if np.all(starts == first):
                # The common cohort: counters attached at the same instant
                # share a clock, so one fold serves them all.
                cols.time_enabled[enabled_slots] = self._fold_clock(
                    first, dt, ticks
                )
            else:
                uniq, inverse = np.unique(starts, return_inverse=True)
                folded = np.array(
                    [self._fold_clock(float(u), dt, ticks) for u in uniq]
                )
                cols.time_enabled[enabled_slots] = folded[inverse]
        if enabled_slots.size > self.pmu_width:
            self._rotation[tid] = self._rotation.get(tid, 0) + ticks

    def _fold_clock(self, start: float, dt: float, ticks: int) -> float:
        """``start`` after ``ticks`` sequential ``+= dt`` additions."""
        key = (start, dt, ticks)
        cached = self._clock_cache.get(key)
        if cached is None:
            value = start
            for _ in range(ticks):
                value += dt
            if len(self._clock_cache) >= 65536:
                self._clock_cache.clear()
            self._clock_cache[key] = cached = value
        return cached

    def _accrue_sampled(self, counter: KernelCounter, delta: float) -> None:
        """Sampling-mode accrual: period quantisation plus interrupt loss."""
        period = counter.sample_period or 1
        counter._carry += delta
        due = int(counter._carry // period)
        counter._carry -= due * period
        if due > 0:
            delivered = due - int(
                self._rng.binomial(due, SAMPLE_LOSS_PROBABILITY)
            )
            counter.samples += delivered
            counter.value = counter.samples * period

    def read_group(self, counters: list[KernelCounter]) -> tuple[int, float, float]:
        """Aggregate reading over a handle's kernel counters.

        Values sum; the kernel clocks take the per-counter maximum (the
        inherit fan-out reads each thread's counter once and user space
        scales against the widest window). Served from the accumulator
        columns like :meth:`KernelCounter.reading`.

        Raises:
            CounterStateError: when any counter is closed.
        """
        value = 0
        enabled = 0.0
        running = 0.0
        for counter in counters:
            v, te, tr = counter.reading()
            value += v
            if te > enabled:
                enabled = te
            if tr > running:
                running = tr
        return value, enabled, running

    def open_count(self) -> int:
        """Number of currently open counters (for leak tests)."""
        return len(self._by_id)
