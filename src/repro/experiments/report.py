"""Artifact writers: one experiment -> JSON + CSV + Markdown.

The JSON artifact is the *golden* form — canonical serialisation
(sorted keys, two-space indent, trailing newline, NaN forbidden) so two
runs of the same spec and seeds are byte-identical, which is exactly
what the determinism tests and the CI smoke job diff. CSV and Markdown
are derived views of the same cells for spreadsheets and docs.

Nothing time-dependent (wall-clock, hostnames, paths) ever enters an
artifact; timings go to the runner's side channel instead.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.matrix import Cell
from repro.experiments.spec import ExperimentSpec

#: Artifact schema version (bump on any layout change).
SCHEMA = 1

#: Supported output formats, in writing order.
FORMATS = ("json", "csv", "md")


def build_artifact(
    spec: ExperimentSpec, cells: list[Cell], results: list[dict]
) -> dict:
    """Assemble the canonical artifact from per-cell results.

    ``results[i]`` must be cell ``cells[i]``'s metrics — the runner
    guarantees index order regardless of execution order.
    """
    return {
        "schema": SCHEMA,
        "name": spec.name,
        "title": spec.title,
        "spec": spec.to_dict(),
        "cells": [
            {
                "index": cell.index,
                "config": cell.config.name,
                "workload": cell.workload,
                "seed": cell.seed,
                "metrics": metrics,
            }
            for cell, metrics in zip(cells, results)
        ],
    }


def canonical_json(artifact: dict) -> str:
    """The byte-exact serialisation two same-seed runs must reproduce."""
    return json.dumps(artifact, sort_keys=True, indent=2, allow_nan=False) + "\n"


def _flatten(metrics: dict, prefix: str = "") -> dict[str, object]:
    flat: dict[str, object] = {}
    for key in sorted(metrics):
        value = metrics[key]
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, f"{name}."))
        else:
            flat[name] = value
    return flat


def _cell_rows(artifact: dict) -> tuple[list[str], list[list[object]]]:
    flats = [_flatten(cell["metrics"]) for cell in artifact["cells"]]
    columns = sorted({k for flat in flats for k in flat})
    rows = []
    for cell, flat in zip(artifact["cells"], flats):
        rows.append(
            [cell["index"], cell["config"], cell["workload"], cell["seed"]]
            + [flat.get(c, "") for c in columns]
        )
    return ["index", "config", "workload", "seed"] + columns, rows


def _csv_cell(value: object) -> str:
    if isinstance(value, float):
        return repr(value)
    if value is None:
        return ""
    return str(value)


def to_csv(artifact: dict) -> str:
    header, rows = _cell_rows(artifact)
    lines = [",".join(header)]
    lines += [",".join(_csv_cell(v) for v in row) for row in rows]
    return "\n".join(lines) + "\n"


def _md_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if value is None:
        return "—"
    return str(value)


def to_markdown(artifact: dict) -> str:
    header, rows = _cell_rows(artifact)
    lines = [f"# {artifact['name']}", ""]
    if artifact["title"]:
        lines += [artifact["title"], ""]
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_md_cell(v) for v in row) + " |")
    return "\n".join(lines) + "\n"


_WRITERS = {
    "json": ("results.json", canonical_json),
    "csv": ("results.csv", to_csv),
    "md": ("results.md", to_markdown),
}


def write_artifacts(
    artifact: dict,
    out_dir: Path | str,
    formats: tuple[str, ...] = FORMATS,
) -> dict[str, Path]:
    """Write the requested formats under ``out_dir/<experiment name>/``."""
    root = Path(out_dir) / artifact["name"]
    root.mkdir(parents=True, exist_ok=True)
    written = {}
    for fmt in formats:
        filename, render = _WRITERS[fmt]
        path = root / filename
        path.write_text(render(artifact))
        written[fmt] = path
    return written
