"""Simulated kernel backend: perf_event semantics over a SimMachine.

Implements the same :class:`~repro.perf.counter.Backend` protocol as the
real syscall backend, against :class:`~repro.sim.machine.SimMachine`'s
counter table. Kernel behaviours modelled:

* **Permission** (paper footnote 1): a non-root monitoring uid may only
  open counters on tasks it owns — EPERM otherwise.
* **Liveness**: opening on a dead/unknown task raises ESRCH.
* **PMU capability**: raw events absent from the architecture's PMU fail
  at open, like programming an unknown event select.
* **Inherit**: ``inherit=True`` on a process's leader counts all of its
  current threads (per-process mode, §2.2 "events can be counted per
  thread, or per process"); the returned handle fans reads out over the
  per-thread kernel counters and sums them.
* **Multiplexing**: handled by the machine's counter table; ``read``
  returns ``time_enabled``/``time_running`` so user space can scale.
* **Faults**: an optional :class:`~repro.perf.faults.FaultPlan` injects
  seeded failures (ESRCH, EMFILE, EINTR, EAGAIN, corrupt reads,
  multiplex starvation) into open/enable/read/close — the misbehaving
  kernel the tool must survive, replayable from one seed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import (
    CounterStateError,
    EventError,
    NoSuchTaskError,
    PerfPermissionError,
)
from repro.perf.counter import Reading
from repro.perf.events import EventSpec
from repro.perf.faults import FaultPlan
from repro.sim.counters import KernelCounter
from repro.sim.machine import SimMachine

#: uid 0 may watch anyone, as in Linux.
ROOT_UID = 0


@dataclass
class _Handle:
    handle_id: int
    tid: int
    kernel_counters: list[KernelCounter]
    closed: bool = False
    last_reading: Reading | None = None


class SimBackend:
    """perf backend over a simulated machine.

    Args:
        machine: the simulated node.
        monitor_uid: uid of the monitoring process (tiptop itself). Tiptop
            requires no privilege (§2.2); like the kernel, the backend
            enforces that an unprivileged monitor only watches its own
            processes unless ``monitor_uid`` is ROOT_UID.
        faults: optional seeded fault plan consulted on every backend
            call (None = a well-behaved kernel).
    """

    def __init__(
        self,
        machine: SimMachine,
        monitor_uid: int = ROOT_UID,
        *,
        faults: FaultPlan | None = None,
    ) -> None:
        self.machine = machine
        self.monitor_uid = monitor_uid
        self.faults = faults
        self._handles: dict[int, _Handle] = {}
        self._ids = itertools.count(100)
        #: lifetime open/close tally, for leak accounting in tests.
        self.opened_total = 0
        self.closed_total = 0

    # -- helpers ---------------------------------------------------------
    def _target_tids(self, tid: int, inherit: bool) -> list[int]:
        # A tid may name a process leader or an individual thread.
        for proc in self.machine.processes.values():
            if proc.pid == tid:
                self._check_permission(proc.uid)
                if not proc.alive:
                    raise NoSuchTaskError(f"task {tid} has exited")
                if inherit:
                    return [t.tid for t in proc.threads if t.alive]
                return [proc.threads[0].tid]
            for t in proc.threads:
                if t.tid == tid:
                    self._check_permission(proc.uid)
                    if not t.alive:
                        raise NoSuchTaskError(f"task {tid} has exited")
                    return [tid]
        raise NoSuchTaskError(f"no such task {tid}")

    def _check_permission(self, owner_uid: int) -> None:
        if self.monitor_uid != ROOT_UID and self.monitor_uid != owner_uid:
            raise PerfPermissionError(
                f"uid {self.monitor_uid} may not monitor tasks of uid {owner_uid}"
            )

    def _get(self, handle: int) -> _Handle:
        h = self._handles.get(handle)
        if h is None or h.closed:
            raise CounterStateError(f"no such open handle {handle}")
        return h

    def _inject(self, op: str, tid: int) -> str | None:
        """Consult the fault plan; raising classes raise from here."""
        if self.faults is None:
            return None
        return self.faults.raise_for(op, tid)

    # -- Backend protocol -------------------------------------------------
    def open(
        self,
        event: EventSpec,
        tid: int,
        *,
        inherit: bool = False,
        sample_period: int | None = None,
    ) -> int:
        """Open ``event`` on ``tid``; see the module docstring for semantics.

        ``sample_period`` switches the counter into sampling mode (§2.5):
        the value is reconstructed from PMU interrupts every ``period``
        events rather than counted exactly.

        A partial open never leaks: if opening the per-thread kernel
        counter k of n fails (dead thread, injected fault), the k-1
        already-open kernel counters are closed before the error
        propagates.
        """
        self._inject("open", tid)
        if not self.machine.arch.supports_event(event.sim_event):
            raise EventError(
                f"PMU of {self.machine.arch.name} cannot count {event.name!r}"
            )
        tids = self._target_tids(tid, inherit)
        kcs: list[KernelCounter] = []
        try:
            for t in tids:
                kcs.append(
                    self.machine.counters.open(
                        event.sim_event,
                        t,
                        self.monitor_uid,
                        sample_period=sample_period,
                    )
                )
        except Exception:
            for kc in kcs:
                if not kc.closed:
                    self.machine.counters.close(kc.counter_id)
            raise
        handle = next(self._ids)
        self._handles[handle] = _Handle(handle, tid, kcs)
        self.opened_total += 1
        return handle

    def _read_handle(self, h: _Handle) -> Reading:
        """One clean (fault-free) read of a handle's kernel counters.

        Served incrementally from the counter table's accumulator columns
        (:meth:`CounterTable.read_group`) — the read never recomputes or
        walks simulation state, whichever advance path produced it.
        """
        value, enabled, running = self.machine.counters.read_group(
            h.kernel_counters
        )
        reading = Reading(value, enabled, running)
        h.last_reading = reading
        return reading

    def _starved_reading(self, h: _Handle) -> Reading:
        """What a multiplex-starved interval reads as: no progress.

        The counter never reached the PMU since the last read, so the
        value and ``time_running`` are frozen at their previous snapshot
        (delta scaling then yields 0 for the interval, as on Linux).
        """
        if h.last_reading is not None:
            return h.last_reading
        return Reading(0, 0.0, 0.0)

    def read(self, handle: int) -> Reading:
        """Sum the per-thread kernel counters behind this handle."""
        h = self._get(handle)
        if self._inject("read", h.tid) == "starve":
            return self._starved_reading(h)
        return self._read_handle(h)

    def read_many(self, handles: list[int]) -> list[Reading]:
        """Batched :meth:`read`: one Reading per handle, in order.

        One call per sampling pass instead of one per counter — the
        syscall-batching analogue of perf's group reads. Results are
        exactly what per-handle ``read`` calls would return, including any
        injected faults: each handle consults the fault plan exactly as an
        individual ``read`` would, and an injected error aborts the whole
        batch before any delta baseline moves.
        """
        resolved = [self._get(handle) for handle in handles]
        readings: list[Reading] = []
        for h in resolved:
            if self._inject("read", h.tid) == "starve":
                readings.append(self._starved_reading(h))
            else:
                readings.append(self._read_handle(h))
        return readings

    def enable(self, handle: int) -> None:
        """Arm all underlying kernel counters."""
        h = self._get(handle)
        self._inject("enable", h.tid)
        for kc in h.kernel_counters:
            kc.enabled = True

    def disable(self, handle: int) -> None:
        """Disarm all underlying kernel counters."""
        h = self._get(handle)
        self._inject("disable", h.tid)
        for kc in h.kernel_counters:
            kc.enabled = False

    def reset(self, handle: int) -> None:
        """Zero all underlying kernel counter values."""
        h = self._get(handle)
        self._inject("reset", h.tid)
        for kc in h.kernel_counters:
            kc.value = 0.0

    def close(self, handle: int) -> None:
        """Release the handle and its kernel counters.

        Mirrors ``close(2)`` on Linux: the descriptor is released even
        when the call reports EINTR, so an injected interrupt fires
        *after* the kernel counters are gone and nothing leaks.
        """
        h = self._get(handle)
        for kc in h.kernel_counters:
            if not kc.closed:
                self.machine.counters.close(kc.counter_id)
        h.closed = True
        del self._handles[handle]
        self.closed_total += 1
        self._inject("close", h.tid)

    def open_handle_count(self) -> int:
        """Number of live handles (for leak tests)."""
        return len(self._handles)

    def live_handles(self) -> list[dict]:
        """Kernel-side state of every open handle (conformance hook).

        Fault-free introspection for the invariant oracles: per handle,
        the target tid and each underlying kernel counter's simulated
        event plus its current ``reading()`` triple and enable bit. Reads
        here do not consult the fault plan and move no delta baselines.
        """
        out = []
        for h in self._handles.values():
            out.append(
                {
                    "handle": h.handle_id,
                    "tid": h.tid,
                    "counters": tuple(
                        (kc.event, *kc.reading(), kc.enabled)
                        for kc in h.kernel_counters
                    ),
                }
            )
        return out
