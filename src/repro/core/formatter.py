"""Rendering: live frames and top-b-style batch streams.

Tiptop has no graphics (§2.1): live mode repaints a text screen (ncurses in
the original; a plain string frame here, which is also what the tests
assert against), batch mode appends snapshot blocks to a stream "convenient
for further processing" with sed/awk-style tools.

When a snapshot carries a :class:`~repro.core.frame.SnapshotFrame`, the
renderers pull table cells column-wise from its arrays (one ``tolist`` per
column) instead of walking per-row dicts; the emitted text is identical.
"""

from __future__ import annotations

from repro.core.columns import ColumnKind
from repro.core.frame import SnapshotFrame
from repro.core.sampler import Row, Snapshot
from repro.core.screen import Screen
from repro.util.tabulate import render_table
from repro.util.units import format_seconds


def render_rows(screen: Screen, rows: list[Row] | tuple[Row, ...]) -> str:
    """The column table for a set of rows (header included)."""
    formats = [c.to_format() for c in screen.columns]
    data = [[row.values[c.header] for c in screen.columns] for row in rows]
    return render_table(formats, data)


def _frame_columns(screen: Screen, frame: SnapshotFrame) -> list[list]:
    """One Python list per screen column, in row order."""
    columns: list[list] = []
    for c in screen.columns:
        if c.kind is ColumnKind.PID:
            columns.append(frame.pids.tolist())
        elif c.kind is ColumnKind.USER:
            columns.append(list(frame.users))
        elif c.kind is ColumnKind.CPU_PCT:
            columns.append(frame.cpu_pct.tolist())
        elif c.kind is ColumnKind.TIME:
            columns.append(frame.cpu_time.tolist())
        elif c.kind is ColumnKind.COMMAND:
            columns.append(list(frame.comms))
        elif c.kind is ColumnKind.PROCESSOR:
            columns.append(frame.processors.tolist())
        elif c.header in frame.metrics:
            columns.append(frame.metrics[c.header].tolist())
        else:
            columns.append(list(frame.labels.get(c.header, [""] * len(frame))))
    return columns


def render_frame_table(screen: Screen, frame: SnapshotFrame) -> str:
    """The column table for a frame (header included)."""
    formats = [c.to_format() for c in screen.columns]
    data = [list(cells) for cells in zip(*_frame_columns(screen, frame))]
    return render_table(formats, data)


def _table_for(screen: Screen, snapshot: Snapshot) -> str:
    if snapshot.frame is not None:
        return render_frame_table(screen, snapshot.frame)
    return render_rows(screen, snapshot.rows)


def render_frame(
    screen: Screen,
    snapshot: Snapshot,
    *,
    idle_threshold: float = 0.0,
) -> str:
    """One live-mode frame: summary line plus the column table."""
    frame = snapshot.frame
    if frame is not None:
        total = len(frame)
        busy = int((frame.cpu_pct >= 50.0).sum())
        table = render_frame_table(
            screen, frame.select(frame.cpu_pct >= idle_threshold)
        )
    else:
        total = len(snapshot.rows)
        busy = sum(1 for r in snapshot.rows if r.cpu_pct >= 50.0)
        table = render_rows(
            screen, [r for r in snapshot.rows if r.cpu_pct >= idle_threshold]
        )
    header = (
        f"tiptop - up {format_seconds(snapshot.time)}, "
        f"{total} tasks, {busy} running, "
        f"delay {snapshot.interval:.1f}s"
    )
    return header + "\n" + table


def render_batch(screen: Screen, snapshot: Snapshot) -> str:
    """One batch-mode block (timestamp line, table, trailing blank line)."""
    stamp = f"--- t={snapshot.time:.1f}s interval={snapshot.interval:.1f}s ---"
    return stamp + "\n" + _table_for(screen, snapshot) + "\n"


def render_csv_header(screen: Screen) -> str:
    """CSV header matching :func:`render_csv_row`."""
    cols = ",".join(c.header for c in screen.columns)
    return f"time,{cols}"


def render_csv_row(screen: Screen, snapshot: Snapshot, row: Row) -> str:
    """One task-interval as a CSV line (for the recorder's export)."""
    cells = []
    for c in screen.columns:
        v = row.values[c.header]
        cells.append(f"{v:.6g}" if isinstance(v, float) else str(v))
    return f"{snapshot.time:.1f}," + ",".join(cells)
