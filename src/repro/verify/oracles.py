"""The oracle registry: differential checks and semantic invariants.

Every oracle is a function ``(Execution) -> list[Violation]`` registered
under a stable name. Differential oracles compare implementation pairs
that claim exact agreement (scalar vs batched advance, batched vs
per-handle reads, engine vs engine, run vs replay); invariant oracles
check semantic properties any single run must satisfy (delta
monotonicity, enabled/running time accounting, cache-hierarchy
consistency, leak freedom, HEALTH-state legality, row/frame agreement,
CSV round-tripping, grid job lifecycles).

Oracles judge their own applicability: an oracle whose precondition a
scenario does not meet (e.g. exact conservation under multiplexing or
chaos) returns no violations rather than guessing with tolerances. The
conditions are data-driven where possible — conservation, for instance,
applies per counter whenever its kernel clocks show it was never
multiplexed off the PMU.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.core.columns import ColumnKind
from repro.core.expr import canonical_name
from repro.core.recorder import Recorder
from repro.core.screen import get_screen
from repro.perf.events import resolve_event
from repro.verify.runner import Execution, ToolRun, execute, run_machine
from repro.verify.scenario import Scenario

#: HEALTH labels that may ever appear in a frame. "retrying" exists as
#: internal state but a task in it skips its row, so it never renders.
LEGAL_HEALTH = frozenset({"ok", "retry", "reattached"})


@dataclass(frozen=True)
class Violation:
    """One oracle failure: which property broke and how."""

    oracle: str
    message: str

    def to_dict(self) -> dict:
        return {"oracle": self.oracle, "message": self.message}


ORACLES: dict[str, Callable[[Execution], list[Violation]]] = {}


def oracle(name: str):
    """Register an oracle under ``name``."""

    def wrap(fn: Callable[[Execution], list[Violation]]):
        ORACLES[name] = fn
        return fn

    return wrap


# -- structural diffing -------------------------------------------------------

def _eq(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (math.isnan(a) and math.isnan(b))
    return a == b


def deep_diff(a, b, path: str = "$", limit: int = 4) -> list[str]:
    """First few paths where two nested plain-data values differ."""
    diffs: list[str] = []

    def walk(a, b, path: str) -> None:
        if len(diffs) >= limit:
            return
        if isinstance(a, dict) and isinstance(b, dict):
            for key in sorted(set(a) | set(b), key=repr):
                if key not in a or key not in b:
                    diffs.append(f"{path}.{key}: only in one side")
                else:
                    walk(a[key], b[key], f"{path}.{key}")
            return
        if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
            if len(a) != len(b):
                diffs.append(f"{path}: length {len(a)} != {len(b)}")
                return
            for i, (x, y) in enumerate(zip(a, b)):
                walk(x, y, f"{path}[{i}]")
            return
        if not _eq(a, b):
            diffs.append(f"{path}: {a!r} != {b!r}")

    walk(a, b, path)
    return diffs


def _compare_runs(
    name: str, label_a: str, a: ToolRun, label_b: str, b: ToolRun
) -> list[Violation]:
    out: list[Violation] = []
    if a.csv != b.csv:
        out.append(
            Violation(
                name,
                f"recorded CSV differs between {label_a} and {label_b} "
                f"({len(a.csv)} vs {len(b.csv)} bytes)",
            )
        )
    for diff in deep_diff(a.snapshot, b.snapshot):
        out.append(
            Violation(
                name,
                f"node snapshot differs ({label_a} vs {label_b}): {diff}",
            )
        )
    if a.health != b.health:
        out.append(
            Violation(
                name,
                f"HEALTH traces differ between {label_a} and {label_b}",
            )
        )
    return out


# -- differential oracles -----------------------------------------------------

@oracle("advance-equivalence")
def _advance_equivalence(ex: Execution) -> list[Violation]:
    """``run_for`` vs ``run_ticks`` must be bitwise identical."""
    if ex.base is None or ex.ticks is None:
        return []
    return _compare_runs(
        "advance-equivalence", "scalar", ex.base, "run_ticks", ex.ticks
    )


@oracle("scalar-columnar-machine")
def _scalar_columnar_machine(ex: Execution) -> list[Violation]:
    """The columnar tick kernel must replay the scalar ``_step`` reference
    bit for bit on the bare machine.

    Deeper than advance-equivalence: no sampler or backend in the loop, and
    the node snapshot includes the scheduler observables the columnar path
    mirrors into arrays (vruntime, context switches, last PU, placement
    memory, multiplex rotation), so a divergence in any mirrored column
    surfaces even when frames would still agree.
    """
    if ex.scenario.kind != "tool":
        return []
    scalar = run_machine(ex.scenario, advance="scalar")
    columnar = run_machine(ex.scenario, advance="ticks")
    return [
        Violation(
            "scalar-columnar-machine",
            f"bare-machine state diverges (scalar vs columnar): {diff}",
        )
        for diff in deep_diff(scalar, columnar)
    ]


@oracle("served-stream")
def _served_stream(ex: Execution) -> list[Violation]:
    """A subscriber's reassembled stream is bitwise-equal to a solo run.

    The serve run (:func:`~repro.verify.runner.run_served`) rebuilt the
    scenario's node independently and shipped every frame over TCP
    through the binary codec; here each client's received digests must
    equal the digests of the solo run's frames *as that client's
    subscription views them* — encode, fanout, decode and server-side
    filtering/derivation all proven lossless in one comparison. Exact
    backpressure accounting and per-client sequence monotonicity ride
    along.
    """
    if ex.served is None or ex.base is None:
        return []
    from repro.serve.protocol import frame_digest
    from repro.serve.session import Subscription, subscription_view

    out: list[Violation] = []
    for name, client in ex.served["clients"].items():
        sub = Subscription.from_dict(client["subscription"])
        expect = [
            frame_digest(subscription_view(frame, sub))
            for frame in ex.base.frames
        ]
        if client["digests"] != expect:
            first = next(
                (
                    k
                    for k, (got, want) in enumerate(
                        zip(client["digests"], expect)
                    )
                    if got != want
                ),
                min(len(client["digests"]), len(expect)),
            )
            out.append(
                Violation(
                    "served-stream",
                    f"client {name!r}: served stream diverges from solo "
                    f"run at frame {first} "
                    f"({len(client['digests'])} vs {len(expect)} frames)",
                )
            )
        seqs = client["seqs"]
        if seqs != sorted(set(seqs)):
            out.append(
                Violation(
                    "served-stream",
                    f"client {name!r}: sequence numbers not strictly "
                    f"increasing: {seqs}",
                )
            )
        stats = client["stats"] or {}
        accounted = (
            stats.get("delivered", 0)
            + stats.get("dropped", 0)
            + stats.get("lag", 0)
        )
        if stats.get("published") != accounted:
            out.append(
                Violation(
                    "served-stream",
                    f"client {name!r}: accounting identity violated "
                    f"(published {stats.get('published')} != delivered + "
                    f"dropped + lag = {accounted})",
                )
            )
        if stats.get("dropped", 0) == 0 and client["gaps"]:
            out.append(
                Violation(
                    "served-stream",
                    f"client {name!r}: {client['gaps']} sequence gaps "
                    "without any recorded drops",
                )
            )
    return out


@oracle("read-agreement")
def _read_agreement(ex: Execution) -> list[Violation]:
    """Batched ``read_many`` vs per-handle ``read`` must agree exactly,
    including under injected mid-batch faults."""
    if ex.base is None or ex.sequential is None:
        return []
    return _compare_runs(
        "read-agreement", "batched", ex.base, "sequential", ex.sequential
    )


@oracle("replay-determinism")
def _replay_determinism(ex: Execution) -> list[Violation]:
    """Two executions of one scenario must be byte-identical."""
    out: list[Violation] = []
    if ex.base is not None and ex.replay is not None:
        out += _compare_runs(
            "replay-determinism", "run1", ex.base, "run2", ex.replay
        )
    if ex.grid and ex.grid_replay is not None:
        first = ex.grid_replay_engine or ex.scenario.engines[0]
        for diff in deep_diff(ex.grid[first], ex.grid_replay):
            out.append(
                Violation(
                    "replay-determinism",
                    f"grid digest differs between runs of engine "
                    f"{first!r}: {diff}",
                )
            )
        if ex.grid_replay_meta is not None and first in ex.grid_meta:
            # Recovery must replay byte-identically too: same failures,
            # same restarts, same adoptions, in the same order.
            for diff in deep_diff(
                ex.grid_meta[first]["events"], ex.grid_replay_meta["events"]
            ):
                out.append(
                    Violation(
                        "replay-determinism",
                        f"supervisor event log differs between runs of "
                        f"engine {first!r}: {diff}",
                    )
                )
    return out


@oracle("engines-agree")
def _engines_agree(ex: Execution) -> list[Violation]:
    """Legacy / serial / sharded grid engines: identical digests."""
    if len(ex.grid) < 2:
        return []
    out: list[Violation] = []
    first = ex.scenario.engines[0]
    reference = ex.grid[first]
    for engine, digest in ex.grid.items():
        if engine == first:
            continue
        for diff in deep_diff(reference, digest):
            out.append(
                Violation(
                    "engines-agree",
                    f"engine {engine!r} diverges from {first!r}: {diff}",
                )
            )
    return out


@oracle("csv-roundtrip")
def _csv_roundtrip(ex: Execution) -> list[Violation]:
    """``to_csv -> from_csv -> to_csv`` must be a fixed point."""
    if ex.base is None or not ex.base.frames:
        return []
    rewritten = Recorder.from_csv(ex.base.csv).to_csv()
    if rewritten != ex.base.csv:
        return [
            Violation(
                "csv-roundtrip",
                f"CSV round-trip not byte-identical "
                f"({len(ex.base.csv)} -> {len(rewritten)} bytes)",
            )
        ]
    return []


# -- invariant oracles --------------------------------------------------------

@oracle("delta-monotonic")
def _delta_monotonic(ex: Execution) -> list[Violation]:
    """Scaled per-interval deltas are finite and never negative."""
    if ex.base is None:
        return []
    out: list[Violation] = []
    for k, frame in enumerate(ex.base.frames):
        for name, values in frame.deltas.items():
            if len(values) and not np.all(np.isfinite(values)):
                out.append(
                    Violation(
                        "delta-monotonic",
                        f"frame {k}: non-finite delta in {name!r}",
                    )
                )
            if len(values) and float(np.min(values)) < -1e-9:
                out.append(
                    Violation(
                        "delta-monotonic",
                        f"frame {k}: negative delta in {name!r} "
                        f"(min {float(np.min(values))})",
                    )
                )
    return out


@oracle("time-accounting")
def _time_accounting(ex: Execution) -> list[Violation]:
    """Kernel clocks: 0 <= time_running <= time_enabled <= now."""
    if ex.base is None:
        return []
    out: list[Violation] = []
    now = ex.base.snapshot["now"]
    for cid, (value, te, tr, *_rest) in ex.base.snapshot["counters"].items():
        if value < 0:
            out.append(
                Violation(
                    "time-accounting", f"counter {cid}: negative value {value}"
                )
            )
        if not 0.0 <= tr <= te + 1e-9:
            out.append(
                Violation(
                    "time-accounting",
                    f"counter {cid}: time_running {tr} outside "
                    f"[0, time_enabled {te}]",
                )
            )
        if te > now + 1e-9:
            out.append(
                Violation(
                    "time-accounting",
                    f"counter {cid}: time_enabled {te} exceeds now {now}",
                )
            )
    return out


def _tid_delta_sum(run: ToolRun, tid: int, name: str) -> float:
    total = 0.0
    for frame in run.frames:
        idx = np.flatnonzero(frame.tids == tid)
        if len(idx) and name in frame.deltas:
            total += float(frame.deltas[name][idx[0]])
    return total


@oracle("conservation")
def _conservation(ex: Execution) -> list[Violation]:
    """Recorded deltas telescope to the kernel counter's final value.

    Applies per counter, data-driven: fault-free scenarios only, handles
    backed by exactly one kernel counter whose clocks show it was never
    multiplexed off the PMU (``time_enabled == time_running`` bitwise —
    once a counter falls behind it never catches up), for tasks that
    were never quarantined/reattached. Under those conditions every
    interval's scaling factor is exactly 1.0 and the integer read deltas
    telescope, so the float sum is exact.
    """
    if ex.base is None or ex.scenario.chaotic:
        return []
    run = ex.base
    if not run.frames:
        return []
    # Map simulated events back to the delta-column names.
    names: dict[object, str] = {}
    for frame in run.frames:
        for name in frame.deltas:
            names.setdefault(resolve_event(name).sim_event, name)
    reattached = {
        tid
        for labels in run.health
        for tid, label in labels.items()
        if label == "reattached"
    }
    out: list[Violation] = []
    for entry in run.kernel:
        if len(entry["counters"]) != 1 or entry["tid"] in reattached:
            continue
        event, value, te, tr, _enabled = entry["counters"][0]
        if te != tr:
            continue  # multiplexed or starved off the PMU at some point
        name = names.get(event)
        if name is None:
            continue
        total = _tid_delta_sum(run, entry["tid"], name)
        if total != float(value):
            out.append(
                Violation(
                    "conservation",
                    f"tid {entry['tid']} {name!r}: recorded deltas sum to "
                    f"{total}, kernel counter holds {value}",
                )
            )
    return out


@oracle("cache-hierarchy")
def _cache_hierarchy(ex: Execution) -> list[Violation]:
    """misses(L1d) >= misses(L2) >= misses(LLC) per task per interval.

    Exact by construction of the miss chain when reads are unscaled, so
    it applies only to unmultiplexed, fault-free runs (scaling
    extrapolates each level independently). Slack of 2 events absorbs
    the per-read integer truncation of each float accumulator.
    """
    if ex.base is None or ex.scenario.chaotic or ex.base.multiplexed:
        return []
    chain = ["l1d-misses", "l2-misses", "l3-misses"]
    out: list[Violation] = []
    for k, frame in enumerate(ex.base.frames):
        present = [c for c in chain if c in frame.deltas]
        for upper, lower in zip(present, present[1:]):
            hi = frame.deltas[upper]
            lo = frame.deltas[lower]
            bad = np.flatnonzero(lo > hi + 2.0)
            for i in bad:
                out.append(
                    Violation(
                        "cache-hierarchy",
                        f"frame {k} tid {int(frame.tids[i])}: "
                        f"{lower}={float(lo[i])} exceeds "
                        f"{upper}={float(hi[i])}",
                    )
                )
    return out


@oracle("no-leaks")
def _no_leaks(ex: Execution) -> list[Violation]:
    """After close: no live handles, no open kernel counters, and the
    lifetime open/close tallies balance — chaos included."""
    out: list[Violation] = []
    for label, run in (
        ("base", ex.base),
        ("ticks", ex.ticks),
        ("sequential", ex.sequential),
        ("replay", ex.replay),
    ):
        if run is None:
            continue
        if run.leaked_handles:
            out.append(
                Violation(
                    "no-leaks",
                    f"{label}: {run.leaked_handles} handles alive after close",
                )
            )
        if run.leaked_counters:
            out.append(
                Violation(
                    "no-leaks",
                    f"{label}: {run.leaked_counters} kernel counters open "
                    "after close",
                )
            )
        if run.opened_total != run.closed_total:
            out.append(
                Violation(
                    "no-leaks",
                    f"{label}: opened {run.opened_total} handles but closed "
                    f"{run.closed_total}",
                )
            )
    return out


@oracle("health-legal")
def _health_legal(ex: Execution) -> list[Violation]:
    """HEALTH labels come from the legal set and follow the lifecycle:
    'reattached' renders for at most one frame per reattach, so it can
    never appear for one tid in two consecutive frames."""
    if ex.base is None:
        return []
    out: list[Violation] = []
    for k, labels in enumerate(ex.base.health):
        for tid, label in labels.items():
            if label not in LEGAL_HEALTH:
                out.append(
                    Violation(
                        "health-legal",
                        f"frame {k} tid {tid}: illegal HEALTH {label!r}",
                    )
                )
            if (
                label == "reattached"
                and k > 0
                and ex.base.health[k - 1].get(tid) == "reattached"
            ):
                out.append(
                    Violation(
                        "health-legal",
                        f"tid {tid}: 'reattached' in consecutive frames "
                        f"{k - 1} and {k}",
                    )
                )
    return out


@oracle("frame-vs-rows")
def _frame_vs_rows(ex: Execution) -> list[Violation]:
    """Vectorised column evaluation must match the scalar expression
    evaluated per row, bitwise (NaN agreeing with NaN)."""
    if ex.base is None:
        return []
    screen = get_screen(ex.scenario.screen)
    columns = [c for c in screen.columns if c.kind is ColumnKind.EXPR]
    out: list[Violation] = []
    for k, frame in enumerate(ex.base.frames):
        for i in range(len(frame)):
            env: dict[str, float] = {
                canonical_name(name): float(values[i])
                for name, values in frame.deltas.items()
            }
            env["delta_t"] = frame.interval if frame.interval > 0 else math.nan
            env["cpu_pct"] = float(frame.cpu_pct[i])
            for column in columns:
                assert column.expression is not None
                scalar = column.expression.evaluate(env)
                vector = float(frame.metrics[column.header][i])
                if not _eq(scalar, vector):
                    out.append(
                        Violation(
                            "frame-vs-rows",
                            f"frame {k} tid {int(frame.tids[i])} "
                            f"{column.header}: scalar {scalar!r} != "
                            f"columnar {vector!r}",
                        )
                    )
    return out


@oracle("job-lifecycle")
def _job_lifecycle(ex: Execution) -> list[Violation]:
    """Grid jobs walk pending -> running -> done with sane timestamps,
    and wall-clock kills never fire before the queue's limit."""
    if not ex.grid:
        return []
    digest = ex.grid[ex.scenario.engines[0]]
    limits = {q.name: q.max_wallclock for q in ex.scenario.queues}
    out: list[Violation] = []
    if len(digest["jobs"]) != len(ex.scenario.jobs):
        out.append(
            Violation(
                "job-lifecycle",
                f"digest has {len(digest['jobs'])} jobs, scenario submitted "
                f"{len(ex.scenario.jobs)}",
            )
        )
    for job in digest["jobs"]:
        jid = job["job_id"]
        if job["state"] == "pending":
            if job["node"] is not None or job["started_at"] is not None:
                out.append(
                    Violation(
                        "job-lifecycle",
                        f"job {jid}: pending but already placed",
                    )
                )
            continue
        if job["started_at"] is None or job["node"] is None:
            out.append(
                Violation(
                    "job-lifecycle", f"job {jid}: running without placement"
                )
            )
            continue
        if job["started_at"] < job["submitted_at"] - 1e-9:
            out.append(
                Violation(
                    "job-lifecycle",
                    f"job {jid}: started {job['started_at']} before "
                    f"submission {job['submitted_at']}",
                )
            )
        if job["finished_at"] is not None and (
            job["finished_at"] < job["started_at"] - 1e-9
        ):
            out.append(
                Violation(
                    "job-lifecycle",
                    f"job {jid}: finished {job['finished_at']} before "
                    f"start {job['started_at']}",
                )
            )
        if job["killed"]:
            limit = limits.get(job["queue"], math.inf)
            if job["finished_at"] is None or math.isinf(limit):
                out.append(
                    Violation(
                        "job-lifecycle",
                        f"job {jid}: killed without a finite wallclock limit",
                    )
                )
            elif job["finished_at"] < job["started_at"] + limit - 1e-9:
                out.append(
                    Violation(
                        "job-lifecycle",
                        f"job {jid}: killed at {job['finished_at']}, before "
                        f"its limit {limit} elapsed",
                    )
                )
    return out


@oracle("crash-recovery")
def _crash_recovery(ex: Execution) -> list[Violation]:
    """A chaos-ridden supervised run agrees bitwise with a clean engine,
    and every observed worker failure left a recovery trace.

    This is the supervision tree's contract: SIGKILLed, hung or garbling
    workers never change *what* the grid computes — restart+replay (or
    adoption, or degrading to serial) resurrects the exact shard state —
    and the event log records how the run survived.
    """
    if not ex.scenario.grid_chaotic or "supervised" not in ex.grid:
        return []
    out: list[Violation] = []
    clean = [e for e in ex.grid if e != "supervised"]
    if clean:
        reference = clean[0]
        for diff in deep_diff(ex.grid[reference], ex.grid["supervised"]):
            out.append(
                Violation(
                    "crash-recovery",
                    f"supervised run under chaos diverges from clean "
                    f"{reference!r}: {diff}",
                )
            )
    meta = ex.grid_meta.get("supervised")
    if meta is not None:
        failures = sum(meta["stats"].get("failures", {}).values())
        recoveries = {"restart", "adopt", "degrade"}
        recovered = sum(
            1 for e in meta["events"] if e.get("event") in recoveries
        )
        if failures and not recovered:
            out.append(
                Violation(
                    "crash-recovery",
                    f"{failures} worker failures observed but the event "
                    "log records no restart/adopt/degrade",
                )
            )
    return out


@oracle("net-partition-recovery")
def _net_partition_recovery(ex: Execution) -> list[Violation]:
    """Link faults never change what the system computes.

    The split-brain contract, both places it applies:

    * Grid: the supervised engine under partitions/drops/half-opens
      must match a clean engine's digest bitwise — no epoch applied
      twice (a stale reply that slipped the fence would double-count),
      none lost (a swallowed unreachable would drop one). Every
      unreachable failure must leave a recovery trace, and a fenced
      reply can only exist where a link fault fired.
    * Serve: when the daemon cut client connections, at least one
      subscriber must actually have exercised the reconnect path (the
      digest bar itself rides on the served-stream oracle).
    """
    if not ex.scenario.net_chaotic:
        return []
    out: list[Violation] = []
    if "supervised" in ex.grid:
        clean = [e for e in ex.grid if e != "supervised"]
        if clean:
            reference = clean[0]
            for diff in deep_diff(ex.grid[reference], ex.grid["supervised"]):
                out.append(
                    Violation(
                        "net-partition-recovery",
                        f"supervised run under link faults diverges from "
                        f"clean {reference!r}: {diff}",
                    )
                )
        meta = ex.grid_meta.get("supervised")
        if meta is not None:
            stats = meta["stats"]
            unreachable = stats.get("failures", {}).get("unreachable", 0)
            recoveries = {"restart", "adopt", "degrade"}
            recovered = sum(
                1 for e in meta["events"] if e.get("event") in recoveries
            )
            if unreachable and not recovered:
                out.append(
                    Violation(
                        "net-partition-recovery",
                        f"{unreachable} unreachable failures observed but "
                        "the event log records no restart/adopt/degrade",
                    )
                )
            if stats.get("fenced_replies", 0) and not stats.get(
                "net_faults", 0
            ):
                out.append(
                    Violation(
                        "net-partition-recovery",
                        f"{stats['fenced_replies']} stale replies fenced "
                        "on a run with no injected link faults",
                    )
                )
    if ex.served is not None and ex.served.get("net_cuts", 0):
        reconnects = sum(
            c.get("reconnects", 0) for c in ex.served["clients"].values()
        )
        if not reconnects:
            out.append(
                Violation(
                    "net-partition-recovery",
                    f"daemon cut {ex.served['net_cuts']} connections but "
                    "no client reconnected (streams cannot be complete)",
                )
            )
    return out


@oracle("worker-leaks")
def _worker_leaks(ex: Execution) -> list[Violation]:
    """No grid run leaves worker processes alive after close — chaos,
    hangs and degraded runs included."""
    out: list[Violation] = []
    for engine, meta in ex.grid_meta.items():
        if meta.get("leaked_workers"):
            out.append(
                Violation(
                    "worker-leaks",
                    f"engine {engine!r}: {meta['leaked_workers']} worker "
                    "processes alive after close",
                )
            )
    if ex.grid_replay_meta is not None and ex.grid_replay_meta.get(
        "leaked_workers"
    ):
        out.append(
            Violation(
                "worker-leaks",
                f"replay run: {ex.grid_replay_meta['leaked_workers']} "
                "worker processes alive after close",
            )
        )
    return out


@oracle("admission-limits")
def _admission_limits(ex: Execution) -> list[Violation]:
    """A node never runs more jobs than logical cores (utilisation <= 1)."""
    if not ex.grid:
        return []
    out: list[Violation] = []
    for engine, digest in ex.grid.items():
        for node, load in digest["utilisation"].items():
            if not 0.0 <= load <= 1.0 + 1e-9:
                out.append(
                    Violation(
                        "admission-limits",
                        f"engine {engine!r} node {node}: utilisation {load}",
                    )
                )
    return out


# -- entry points -------------------------------------------------------------

def check(ex: Execution) -> list[Violation]:
    """Run every registered oracle over one execution."""
    violations: list[Violation] = []
    for name in sorted(ORACLES):
        violations.extend(ORACLES[name](ex))
    return violations


def check_scenario(scenario: Scenario) -> list[Violation]:
    """Execute a scenario and run all oracles (the fuzzing workhorse)."""
    return check(execute(scenario))
