"""Workload phase sequencing."""

import math

import pytest

from repro.errors import WorkloadError
from repro.sim.cache import MemoryBehavior
from repro.sim.isa import InstructionMix
from repro.sim.workload import Phase, Workload, steady


def _phase(name, instructions, **kw):
    return Phase(
        name=name,
        instructions=instructions,
        mix=InstructionMix.of(int_alu=1.0),
        memory=MemoryBehavior(working_set=1024),
        noise=0.0,
        **kw,
    )


class TestPhase:
    def test_budget_must_be_positive(self):
        with pytest.raises(WorkloadError):
            _phase("p", 0)

    def test_exec_cpi_positive(self):
        with pytest.raises(WorkloadError):
            _phase("p", 1.0, exec_cpi=0)

    def test_with_budget(self):
        p = _phase("p", 100.0)
        assert p.with_budget(5.0).instructions == 5.0
        assert p.instructions == 100.0  # original unchanged

    def test_arch_factor_lookup(self):
        p = _phase("p", 1.0, arch_factors=(("ppc970", 1.5),))
        assert p.arch_factor("ppc970") == 1.5
        assert p.arch_factor("nehalem") == 1.0


class TestWorkload:
    def test_needs_phases(self):
        with pytest.raises(WorkloadError):
            Workload("w", ())

    def test_total_instructions(self):
        w = Workload("w", (_phase("a", 10.0), _phase("b", 20.0)))
        assert w.total_instructions == 30.0

    def test_repeat_multiplies(self):
        w = Workload("w", (_phase("a", 10.0),), repeat=3)
        assert w.total_instructions == 30.0

    def test_locate_walks_phases(self):
        w = Workload("w", (_phase("a", 10.0), _phase("b", 20.0)))
        phase, remaining = w.locate(0.0)
        assert phase.name == "a" and remaining == 10.0
        phase, remaining = w.locate(15.0)
        assert phase.name == "b" and remaining == 15.0

    def test_locate_exhausted_returns_none(self):
        w = Workload("w", (_phase("a", 10.0),))
        assert w.locate(10.0) is None
        assert w.locate(99.0) is None

    def test_locate_with_repeat(self):
        w = Workload("w", (_phase("a", 10.0), _phase("b", 10.0)), repeat=2)
        phase, _ = w.locate(25.0)
        assert phase.name == "a"  # second pass
        assert w.locate(40.0) is None

    def test_locate_negative_rejected(self):
        w = steady("w", _phase("a", 10.0))
        with pytest.raises(WorkloadError):
            w.locate(-1.0)

    def test_infinite_final_phase(self):
        w = Workload("w", (_phase("a", 10.0), _phase("z", math.inf)))
        assert math.isinf(w.total_instructions)
        phase, remaining = w.locate(1e18)
        assert phase.name == "z"
        assert math.isinf(remaining)

    def test_infinite_must_be_last(self):
        with pytest.raises(WorkloadError):
            Workload("w", (_phase("z", math.inf), _phase("a", 10.0)))

    def test_phase_names(self):
        w = Workload("w", (_phase("a", 1.0), _phase("b", 1.0)))
        assert w.phase_names() == ["a", "b"]

    def test_exact_pass_boundary_starts_next_pass(self):
        w = Workload("w", (_phase("a", 10.0),), repeat=2)
        phase, remaining = w.locate(10.0)
        assert phase.name == "a" and remaining == 10.0
