"""Simulated kernel backend: perf_event semantics over a SimMachine.

Implements the same :class:`~repro.perf.counter.Backend` protocol as the
real syscall backend, against :class:`~repro.sim.machine.SimMachine`'s
counter table. Kernel behaviours modelled:

* **Permission** (paper footnote 1): a non-root monitoring uid may only
  open counters on tasks it owns — EPERM otherwise.
* **Liveness**: opening on a dead/unknown task raises ESRCH.
* **PMU capability**: raw events absent from the architecture's PMU fail
  at open, like programming an unknown event select.
* **Inherit**: ``inherit=True`` on a process's leader counts all of its
  current threads (per-process mode, §2.2 "events can be counted per
  thread, or per process"); the returned handle fans reads out over the
  per-thread kernel counters and sums them.
* **Multiplexing**: handled by the machine's counter table; ``read``
  returns ``time_enabled``/``time_running`` so user space can scale.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import (
    CounterStateError,
    EventError,
    NoSuchTaskError,
    PerfPermissionError,
)
from repro.perf.counter import Reading
from repro.perf.events import EventSpec
from repro.sim.counters import KernelCounter
from repro.sim.machine import SimMachine

#: uid 0 may watch anyone, as in Linux.
ROOT_UID = 0


@dataclass
class _Handle:
    handle_id: int
    kernel_counters: list[KernelCounter]
    closed: bool = False


class SimBackend:
    """perf backend over a simulated machine.

    Args:
        machine: the simulated node.
        monitor_uid: uid of the monitoring process (tiptop itself). Tiptop
            requires no privilege (§2.2); like the kernel, the backend
            enforces that an unprivileged monitor only watches its own
            processes unless ``monitor_uid`` is ROOT_UID.
    """

    def __init__(self, machine: SimMachine, monitor_uid: int = ROOT_UID) -> None:
        self.machine = machine
        self.monitor_uid = monitor_uid
        self._handles: dict[int, _Handle] = {}
        self._ids = itertools.count(100)

    # -- helpers ---------------------------------------------------------
    def _target_tids(self, tid: int, inherit: bool) -> list[int]:
        # A tid may name a process leader or an individual thread.
        for proc in self.machine.processes.values():
            if proc.pid == tid:
                self._check_permission(proc.uid)
                if not proc.alive:
                    raise NoSuchTaskError(f"task {tid} has exited")
                if inherit:
                    return [t.tid for t in proc.threads if t.alive]
                return [proc.threads[0].tid]
            for t in proc.threads:
                if t.tid == tid:
                    self._check_permission(proc.uid)
                    if not t.alive:
                        raise NoSuchTaskError(f"task {tid} has exited")
                    return [tid]
        raise NoSuchTaskError(f"no such task {tid}")

    def _check_permission(self, owner_uid: int) -> None:
        if self.monitor_uid != ROOT_UID and self.monitor_uid != owner_uid:
            raise PerfPermissionError(
                f"uid {self.monitor_uid} may not monitor tasks of uid {owner_uid}"
            )

    def _get(self, handle: int) -> _Handle:
        h = self._handles.get(handle)
        if h is None or h.closed:
            raise CounterStateError(f"no such open handle {handle}")
        return h

    # -- Backend protocol -------------------------------------------------
    def open(
        self,
        event: EventSpec,
        tid: int,
        *,
        inherit: bool = False,
        sample_period: int | None = None,
    ) -> int:
        """Open ``event`` on ``tid``; see the module docstring for semantics.

        ``sample_period`` switches the counter into sampling mode (§2.5):
        the value is reconstructed from PMU interrupts every ``period``
        events rather than counted exactly.
        """
        if not self.machine.arch.supports_event(event.sim_event):
            raise EventError(
                f"PMU of {self.machine.arch.name} cannot count {event.name!r}"
            )
        tids = self._target_tids(tid, inherit)
        kcs = [
            self.machine.counters.open(
                event.sim_event, t, self.monitor_uid, sample_period=sample_period
            )
            for t in tids
        ]
        handle = next(self._ids)
        self._handles[handle] = _Handle(handle, kcs)
        return handle

    def read(self, handle: int) -> Reading:
        """Sum the per-thread kernel counters behind this handle."""
        h = self._get(handle)
        value = 0
        enabled = 0.0
        running = 0.0
        for kc in h.kernel_counters:
            v, te, tr = kc.reading()
            value += v
            enabled = max(enabled, te)
            running = max(running, tr)
        return Reading(value, enabled, running)

    def read_many(self, handles: list[int]) -> list[Reading]:
        """Batched :meth:`read`: one Reading per handle, in order.

        One call per sampling pass instead of one per counter — the
        syscall-batching analogue of perf's group reads. Results are
        exactly what per-handle ``read`` calls would return.
        """
        readings: list[Reading] = []
        get = self._get
        for handle in handles:
            h = get(handle)
            value = 0
            enabled = 0.0
            running = 0.0
            for kc in h.kernel_counters:
                v, te, tr = kc.reading()
                value += v
                if te > enabled:
                    enabled = te
                if tr > running:
                    running = tr
            readings.append(Reading(value, enabled, running))
        return readings

    def enable(self, handle: int) -> None:
        """Arm all underlying kernel counters."""
        for kc in self._get(handle).kernel_counters:
            kc.enabled = True

    def disable(self, handle: int) -> None:
        """Disarm all underlying kernel counters."""
        for kc in self._get(handle).kernel_counters:
            kc.enabled = False

    def reset(self, handle: int) -> None:
        """Zero all underlying kernel counter values."""
        for kc in self._get(handle).kernel_counters:
            kc.value = 0.0

    def close(self, handle: int) -> None:
        """Release the handle and its kernel counters."""
        h = self._get(handle)
        for kc in h.kernel_counters:
            if not kc.closed:
                self.machine.counters.close(kc.counter_id)
        h.closed = True
        del self._handles[handle]

    def open_handle_count(self) -> int:
        """Number of live handles (for leak tests)."""
        return len(self._handles)
