"""Simulated hardware + OS substrate.

This package stands in for the physical machines of the paper (Intel Xeon
W3550 "Nehalem", Core 2, PowerPC 970, bi-Xeon E5640 data-center nodes): a
deterministic, discrete-time model of cores, SMT threads, a multi-level cache
hierarchy with a shared last-level cache, a branch predictor, the micro-code
floating-point assist unit, a DRAM bandwidth model, and a CFS-like OS
scheduler with per-task hardware-counter save/restore.

The perf_event simulated backend (:mod:`repro.perf.simbackend`) exposes this
machine through the same API surface as the real Linux syscall, so the tiptop
tool layer is oblivious to which kernel it is talking to.
"""

from repro.sim.arch import ArchModel, CORE2, NEHALEM, PPC970, WESTMERE_E5640
from repro.sim.events import Event
from repro.sim.grid import (
    Grid,
    Job,
    NodeSpec,
    QueueSpec,
    default_fleet,
    sge_queues,
)
from repro.sim.isa import InstructionClass, InstructionMix, OperandProfile
from repro.sim.machine import SimMachine
from repro.sim.microkernels import Instr, MicroKernel, Op
from repro.sim.process import SimProcess, SimThread, TaskState
from repro.sim.workload import Phase, Workload

__all__ = [
    "ArchModel",
    "CORE2",
    "Event",
    "Grid",
    "Instr",
    "InstructionClass",
    "InstructionMix",
    "Job",
    "MicroKernel",
    "NEHALEM",
    "NodeSpec",
    "Op",
    "OperandProfile",
    "PPC970",
    "Phase",
    "QueueSpec",
    "SimMachine",
    "SimProcess",
    "SimThread",
    "TaskState",
    "WESTMERE_E5640",
    "Workload",
    "default_fleet",
    "sge_queues",
]
