"""Shard-wire fuzz battery: tagged-value exactness and typed failure.

The socket shard transport rides on :mod:`repro.sim.shardwire`, which
must uphold the same two properties as the telemetry frame protocol
(see ``tests/test_serve_protocol.py``):

* **Lossless**: ``encode_value -> decode_value`` reproduces any epoch
  payload exactly — tuples stay tuples, NaN payloads and -0.0 survive,
  int64 extremes and bigints round-trip, dict insertion order holds.
* **Never hang, never over-read**: truncation at every offset, garbling
  of every byte, hostile counts, depth bombs and bad prefixes all raise
  a typed :class:`~repro.errors.WireError`; no input is silently
  mis-decoded (crc32 guards the body).
"""

from __future__ import annotations

import math
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    WireCorruptError,
    WireError,
    WireOversizeError,
    WireTruncatedError,
    WireVersionError,
)
from repro.serve.protocol import _PREFIX, MAX_MESSAGE, MessageReader
from repro.sim.shardwire import (
    MAX_DEPTH,
    MSG_SHARD_ADVANCE,
    MSG_SHARD_CLOSE,
    MSG_SHARD_ERR,
    MSG_SHARD_OK,
    MSG_SHARD_SNAPSHOT,
    decode_shard,
    decode_value,
    encode_value,
    pack_shard,
)

# -- value strategy -----------------------------------------------------------

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.integers(min_value=2**63, max_value=2**80),
    st.integers(min_value=-(2**80), max_value=-(2**63) - 1),
    st.floats(allow_nan=True, allow_infinity=True, width=64),
    st.text(alphabet=st.characters(blacklist_categories=("Cs",)), max_size=24),
    st.binary(max_size=24),
)

_values = st.recursive(
    _scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.lists(inner, max_size=4).map(tuple),
        st.dictionaries(
            st.one_of(st.text(max_size=8), st.integers(-100, 100)),
            inner,
            max_size=4,
        ),
    ),
    max_leaves=20,
)


def _eq(a, b) -> bool:
    """Structural equality distinguishing NaN, -0.0 and tuple-vs-list."""
    if type(a) is not type(b):
        return False
    if type(a) is float:
        if math.isnan(a) and math.isnan(b):
            return True
        return struct.pack("!d", a) == struct.pack("!d", b)
    if type(a) in (list, tuple):
        return len(a) == len(b) and all(_eq(x, y) for x, y in zip(a, b))
    if type(a) is dict:
        return list(a) == list(b) and all(_eq(a[k], b[k]) for k in a)
    return a == b


def _payload(frame: bytes) -> bytes:
    """Strip the u32 length prefix off a packed message."""
    return frame[_PREFIX.size :]


class TestValueRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(_values)
    def test_any_value_round_trips_exactly(self, value):
        assert _eq(decode_value(encode_value(value)), value)

    def test_tuple_and_list_keep_their_types(self):
        value = ([1, 2], (3, 4), [(5,)], ((6,), [7]))
        out = decode_value(encode_value(value))
        assert _eq(out, value)
        assert type(out) is tuple
        assert type(out[0]) is list
        assert type(out[1]) is tuple
        assert type(out[2][0]) is tuple

    def test_float_bit_patterns_survive(self):
        for f in (float("nan"), float("inf"), float("-inf"), -0.0, 0.0,
                  5e-324, 1.7976931348623157e308):
            raw = struct.pack("!d", f)
            assert struct.pack(
                "!d", decode_value(encode_value(f))
            ) == raw

    def test_int_extremes_and_bigints(self):
        for n in (0, -1, 2**63 - 1, -(2**63), 2**63, -(2**63) - 1,
                  10**40, -(10**40)):
            assert decode_value(encode_value(n)) == n

    def test_unicode_and_bytes(self):
        value = {"naïve": "Ωμέγα ", "raw": b"\x00\xff\x7f"}
        assert decode_value(encode_value(value)) == value

    def test_dict_insertion_order_is_preserved(self):
        value = {"z": 1, "a": 2, "m": 3}
        assert list(decode_value(encode_value(value))) == ["z", "a", "m"]

    def test_bool_is_not_flattened_to_int(self):
        out = decode_value(encode_value([True, 1, False, 0]))
        assert out == [True, 1, False, 0]
        assert type(out[0]) is bool and type(out[1]) is int

    def test_unencodable_type_is_rejected(self):
        with pytest.raises(WireCorruptError, match="not wire-encodable"):
            encode_value({1, 2, 3})

    def test_depth_bomb_rejected_on_encode(self):
        bomb: list = []
        tip = bomb
        for _ in range(MAX_DEPTH + 2):
            tip.append([])
            tip = tip[0]
        with pytest.raises(WireCorruptError, match="nests deeper"):
            encode_value(bomb)

    def test_depth_bomb_rejected_on_decode(self):
        # Hand-build nested lists one level deeper than the cap.
        raw = b""
        for _ in range(MAX_DEPTH + 2):
            raw = bytes([8]) + struct.pack("!I", 1) + raw  # TAG_LIST, n=1
        raw = raw[:-5] + bytes([0])  # innermost: TAG_NONE
        with pytest.raises(WireCorruptError, match="nests deeper"):
            decode_value(raw)


class TestHostileValues:
    def test_truncation_at_every_offset(self):
        blob = encode_value(
            {"cmds": [("spawn", 1, "n0", ["cmd"], "user", 2.5, 0)],
             "n_ticks": 4, "frac": 0.5}
        )
        for cut in range(len(blob)):
            with pytest.raises(WireError):
                decode_value(blob[:cut])

    def test_garble_every_byte_never_misdecodes_silently(self):
        value = {"epoch": 7, "reports": [(1, "exit", 0.25), None]}
        blob = encode_value(value)
        for i in range(len(blob)):
            garbled = blob[:i] + bytes([blob[i] ^ 0xFF]) + blob[i + 1 :]
            try:
                out = decode_value(garbled)
            except WireError:
                continue
            # A flipped byte that still decodes must decode to a
            # *different* value (e.g. an int payload changed).
            assert not _eq(out, value)

    def test_sequence_count_beyond_payload_is_rejected_before_alloc(self):
        raw = bytes([8]) + struct.pack("!I", 2**31)  # TAG_LIST, huge count
        with pytest.raises(WireTruncatedError, match="exceeds remaining"):
            decode_value(raw)

    def test_dict_count_beyond_payload_is_rejected(self):
        raw = bytes([10]) + struct.pack("!I", 2**30)  # TAG_DICT
        with pytest.raises(WireTruncatedError, match="exceeds remaining"):
            decode_value(raw)

    def test_unknown_tag_is_rejected(self):
        with pytest.raises(WireCorruptError, match="unknown value tag"):
            decode_value(bytes([99]))

    def test_trailing_bytes_are_rejected(self):
        with pytest.raises(WireError):
            decode_value(encode_value(1) + b"\x00")

    def test_non_scalar_dict_key_is_rejected(self):
        # TAG_DICT, count=1, key=TAG_LIST(empty), value=TAG_NONE
        raw = (bytes([10]) + struct.pack("!I", 1)
               + bytes([8]) + struct.pack("!I", 0) + bytes([0]))
        with pytest.raises(WireCorruptError, match="dict key"):
            decode_value(raw)

    def test_undecodable_utf8_is_rejected(self):
        raw = bytes([6]) + struct.pack("!I", 2) + b"\xff\xfe"
        with pytest.raises(WireCorruptError, match="undecodable string"):
            decode_value(raw)


class TestShardEnvelope:
    def test_round_trip_every_message_type(self):
        cases = [
            (MSG_SHARD_ADVANCE, {"cmds": [], "n_ticks": 3, "frac": 0.0,
                                 "intern": {}}),
            (MSG_SHARD_SNAPSHOT, ["n0", "n1"]),
            (MSG_SHARD_CLOSE, None),
            (MSG_SHARD_OK, [(0, "ready")]),
            (MSG_SHARD_ERR, "SimulationError: no node 'x'"),
        ]
        for msg_type, value in cases:
            out_type, out = decode_shard(_payload(pack_shard(msg_type, value)))
            assert out_type == msg_type
            assert _eq(out, value)

    def test_unknown_message_type_rejected_on_pack(self):
        with pytest.raises(WireCorruptError, match="unknown shard message"):
            pack_shard(3, None)  # a valid *serve* type, not a shard type

    def test_unknown_message_type_rejected_on_decode(self):
        # Take a valid shard frame and patch the type byte.
        frame = bytearray(pack_shard(MSG_SHARD_OK, None))
        frame[_PREFIX.size + 5] = 42  # !4sBB → type is byte 5 of the head
        with pytest.raises(WireCorruptError, match="unknown shard message"):
            decode_shard(bytes(frame[_PREFIX.size :]))

    def test_checksum_guards_the_body(self):
        frame = bytearray(pack_shard(MSG_SHARD_OK, {"epoch": 3}))
        frame[-1] ^= 0x01
        with pytest.raises(WireCorruptError, match="checksum"):
            decode_shard(bytes(frame[_PREFIX.size :]))

    def test_bad_magic_and_version(self):
        good = pack_shard(MSG_SHARD_CLOSE, None)
        bad_magic = bytearray(good)
        bad_magic[_PREFIX.size] ^= 0xFF
        with pytest.raises(WireCorruptError, match="bad magic"):
            decode_shard(bytes(bad_magic[_PREFIX.size :]))
        bad_version = bytearray(good)
        bad_version[_PREFIX.size + 4] = 250
        with pytest.raises(WireVersionError):
            decode_shard(bytes(bad_version[_PREFIX.size :]))

    def test_truncation_at_every_offset_of_a_full_frame(self):
        payload = _payload(pack_shard(
            MSG_SHARD_OK, [(1, "exit", 0.5), {"pid": 100}]))
        for cut in range(len(payload)):
            with pytest.raises(WireError):
                decode_shard(payload[:cut])


class TestStreamReassembly:
    """The socket transport reuses MessageReader: byte-dribble and
    hostile prefixes behave exactly as the serve protocol promises."""

    def test_byte_at_a_time_reassembly(self):
        frames = [pack_shard(MSG_SHARD_OK, i) for i in range(3)]
        stream = b"".join(frames)
        reader = MessageReader()
        out = []
        for i in range(len(stream)):
            out.extend(reader.feed(stream[i : i + 1]))
        assert [decode_shard(p) for p in out] == [
            (MSG_SHARD_OK, 0), (MSG_SHARD_OK, 1), (MSG_SHARD_OK, 2)
        ]

    def test_oversize_prefix_raises_before_buffering(self):
        reader = MessageReader()
        with pytest.raises(WireOversizeError):
            reader.feed(_PREFIX.pack(MAX_MESSAGE + 1))

    def test_garbled_prefix_is_an_oversize_not_a_hang(self):
        # Random high bytes decode as a huge length: typed error, not an
        # unbounded buffer.
        reader = MessageReader()
        with pytest.raises(WireError):
            reader.feed(b"\xff\xff\xff\xff" + b"junk")
