"""Cut connections, resume-by-seq, and the retention ring's edges.

The reconnect contract: a client cut mid-stream redials on the shared
backoff ladder, resumes after its last fully received sequence, and the
reassembled stream is bitwise-equal to an uninterrupted subscriber's.
The edges are typed, not fudged — a resume the retention ring rotated
past raises :class:`~repro.errors.ResumeGapError` naming the missing
range, a resume in the future yields an empty clean stream, and a resume
behind a drop burst reports the gap in ``gaps`` while the per-client
accounting identity still balances.

pytest-asyncio is absent here, so scenarios run under ``asyncio.run``;
cuts come from a :class:`~repro.sim.netchaos.NetChaosPlan` pinned to the
client's link (crc32 of its id), so every severance is scheduled, not
raced.
"""

from __future__ import annotations

import asyncio
import zlib

import pytest

from repro.core.app import SimHost
from repro.core.options import Options
from repro.core.sampler import Sampler
from repro.core.screen import get_screen
from repro.errors import ResumeGapError, SessionError, WireSequenceError
from repro.serve.client import ServeClient, collect
from repro.serve.daemon import CollectorDaemon
from repro.serve.protocol import frame_digest
from repro.sim.netchaos import NetChaosPlan, NetFaultSpec
from repro.sim.workloads import datacenter
from repro.util.backoff import BackoffPolicy

_DELAY = 0.5
_SEED = 7


def _link(client_id: str) -> int:
    return zlib.crc32(client_id.encode()) & 0x7FFFFFFF


def _cut_plan(client_id: str, *seqs: int, duration: int = 1) -> NetChaosPlan:
    """Sever this client's connection at exactly these frame seqs."""
    return NetChaosPlan(
        seed=0,
        specs=tuple(
            NetFaultSpec("partition", at_epochs=frozenset({seq}),
                         link=_link(client_id), duration=duration)
            for seq in seqs
        ),
    )


def _make_daemon(iterations: int, *, min_clients: int = 1, **kwargs):
    machine = datacenter.make_node(tick=min(0.5, _DELAY / 4), seed=_SEED)
    datacenter.populate_fig1(machine)
    host = SimHost(machine)
    sampler = Sampler(
        host.backend, host.tasks, get_screen("default"), Options(delay=_DELAY)
    )
    return CollectorDaemon(
        sampler,
        advance=lambda: host.sleep(_DELAY),
        iterations=iterations,
        min_clients=min_clients,
        **kwargs,
    )


def _solo_digests(iterations: int) -> list[str]:
    machine = datacenter.make_node(tick=min(0.5, _DELAY / 4), seed=_SEED)
    datacenter.populate_fig1(machine)
    host = SimHost(machine)
    sampler = Sampler(
        host.backend, host.tasks, get_screen("default"), Options(delay=_DELAY)
    )
    sampler.sample_frame()  # baseline, never published
    digests = []
    for _ in range(iterations):
        host.sleep(_DELAY)
        digests.append(frame_digest(sampler.sample_frame()))
    sampler.close()
    return digests


# -- the reconnect contract ---------------------------------------------------

def test_cut_client_reassembles_bitwise_equal_stream():
    """One scheduled cut mid-stream: the reconnecting client's stream is
    bitwise-equal to the solo pipeline's, with zero gaps."""

    async def go():
        daemon = _make_daemon(4, netchaos=_cut_plan("chaos", 1))
        port = await daemon.start()
        (received, client), _ = await asyncio.gather(
            collect("127.0.0.1", port, client_id="chaos",
                    reconnect=True, backoff=BackoffPolicy(base=0.0)),
            daemon.run(),
        )
        await daemon.close()
        return received, client, daemon.net_cuts

    received, client, cuts = asyncio.run(go())
    assert cuts == 1
    assert client.reconnects == 1
    assert client.gaps == 0
    assert [seq for seq, _ in received] == [0, 1, 2, 3]
    assert [frame_digest(f) for _, f in received] == _solo_digests(4)


def test_cut_before_first_frame_resumes_from_the_hello_floor():
    """A client cut before it received anything must resume from the
    position its first HELLO promised — not from "live", which by then
    may be past the whole backlog."""

    async def go():
        daemon = _make_daemon(3, netchaos=_cut_plan("chaos", 0))
        port = await daemon.start()
        (received, client), _ = await asyncio.gather(
            collect("127.0.0.1", port, client_id="chaos",
                    reconnect=True, backoff=BackoffPolicy(base=0.0)),
            daemon.run(),
        )
        await daemon.close()
        return received, client

    received, client = asyncio.run(go())
    assert client.reconnects == 1
    assert [seq for seq, _ in received] == [0, 1, 2]
    assert [frame_digest(f) for _, f in received] == _solo_digests(3)


def test_reconnect_budget_exhaustion_is_a_typed_session_error():
    """A partition that never heals: the client climbs the ladder
    ``max_reconnects`` times, then gives up with SessionError instead of
    spinning forever."""

    async def go():
        daemon = _make_daemon(
            3, netchaos=_cut_plan("chaos", 0, duration=10_000)
        )
        port = await daemon.start()

        async def doomed():
            with pytest.raises(SessionError, match="gave up after 2"):
                await collect("127.0.0.1", port, client_id="chaos",
                              reconnect=True, backoff=BackoffPolicy(base=0.0),
                              max_reconnects=2)

        _, _ = await asyncio.gather(doomed(), daemon.run())
        await daemon.close()

    asyncio.run(go())


# -- retention-ring edges -----------------------------------------------------

def test_resume_past_rotated_retention_raises_resume_gap_error():
    """Cut before the first frame with a ring smaller than the run: by
    the time the client redials the oldest retained seq is beyond its
    resume point, and the typed error names both sides of the hole."""

    async def go():
        daemon = _make_daemon(
            6, netchaos=_cut_plan("chaos", 0), retention=2
        )
        port = await daemon.start()

        async def gapped():
            # The backoff is long enough that the whole run (pace 0)
            # finishes and the ring rotates before the redial lands.
            with pytest.raises(ResumeGapError) as info:
                await collect("127.0.0.1", port, client_id="chaos",
                              reconnect=True,
                              backoff=BackoffPolicy(base=0.4, cap=0.4))
            return info.value

        exc, _ = await asyncio.gather(gapped(), daemon.run())
        await daemon.close()
        return exc

    exc = asyncio.run(go())
    assert exc.requested == -1  # cut before any frame arrived
    assert exc.oldest == 4  # 6 published, ring of 2: seqs 4 and 5 remain


def test_fresh_resume_in_the_future_is_an_empty_clean_stream():
    """Resuming past everything the daemon ever published is not an
    error: the server has nothing newer, so the client gets zero frames
    and a clean accounting BYE."""

    async def go():
        daemon = _make_daemon(3)
        port = await daemon.start()
        _, _ = await asyncio.gather(
            collect("127.0.0.1", port, client_id="live"),
            daemon.run(),
        )
        received, client = await collect(
            "127.0.0.1", port, client_id="future", resume_from=100
        )
        await daemon.close()
        return received, client

    received, client = asyncio.run(go())
    assert received == []
    assert client.gaps == 0
    assert client.bye is not None and "stats" in client.bye
    stats = client.bye["stats"]
    assert stats["delivered"] == 0


def test_fresh_resume_behind_the_ring_reports_the_gap_exactly():
    """A late joiner resuming from 0 against a rotated ring gets what is
    retained, counts exactly one discontinuity, and its accounting
    identity still balances — the hole is reported, never papered over."""

    async def go():
        daemon = _make_daemon(5, retention=2)
        port = await daemon.start()
        _, _ = await asyncio.gather(
            collect("127.0.0.1", port, client_id="live"),
            daemon.run(),
        )
        received, client = await collect(
            "127.0.0.1", port, client_id="late", resume_from=0
        )
        await daemon.close()
        return received, client

    received, client = asyncio.run(go())
    assert [seq for seq, _ in received] == [3, 4]
    assert client.gaps == 1
    assert [frame_digest(f) for _, f in received] == _solo_digests(5)[3:]
    stats = client.bye["stats"]
    assert stats["published"] == (
        stats["delivered"] + stats["dropped"] + stats["lag"]
    )


# -- typed wire errors --------------------------------------------------------

def test_wire_sequence_error_carries_expected_and_actual():
    exc = WireSequenceError("seq went backwards", expected=5, actual=3)
    assert exc.expected == 5
    assert exc.actual == 3
    assert "backwards" in str(exc)


def test_steady_client_is_never_disturbed_by_anothers_cuts():
    """Chaos is per-link: a second subscriber whose link has no
    scheduled faults streams straight through while the first one is
    being cut and reconnecting."""

    async def go():
        daemon = _make_daemon(
            4, min_clients=2, netchaos=_cut_plan("chaos", 1, 2)
        )
        port = await daemon.start()
        results, _ = await asyncio.gather(
            asyncio.gather(
                collect("127.0.0.1", port, client_id="chaos",
                        reconnect=True, backoff=BackoffPolicy(base=0.0)),
                collect("127.0.0.1", port, client_id="steady"),
            ),
            daemon.run(),
        )
        await daemon.close()
        return results, daemon.net_cuts

    (chaotic, steady), cuts = asyncio.run(go())
    assert cuts >= 2
    solo = _solo_digests(4)
    for received, client in (chaotic, steady):
        assert [frame_digest(f) for _, f in received] == solo
        assert client.gaps == 0
    assert chaotic[1].reconnects >= 2
    assert steady[1].reconnects == 0


def test_partition_smoke_gate(capsys):
    """The CI gate (python -m repro.serve --partition-smoke) run
    in-process: cut clients reconnect, streams stay bitwise-equal."""
    from repro.serve.__main__ import main as serve_main

    assert serve_main(["--partition-smoke", "--delay", "0.5"]) == 0
    out = capsys.readouterr().out
    assert "partition smoke: OK" in out
    assert "bitwise-equal" in out
