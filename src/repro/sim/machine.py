"""The simulated machine: topology + caches + memory + scheduler + clock.

:class:`SimMachine` advances a virtual clock in fixed ticks. Each tick it

1. fires any due timed events (job arrivals/kills from experiment scripts),
2. dispatches runnable threads to PUs (CFS-like, affinity-aware),
3. resolves cache-capacity contention between co-scheduled tasks by a
   short fixed-point iteration on access pressures,
4. inflates DRAM latency with aggregate LLC-miss bandwidth,
5. retires instructions per scheduled thread through its workload phases,
   accruing hardware events into the kernel counter table, and
6. reaps threads whose workloads completed.

Everything is deterministic: the only randomness is per-process Generators
seeded from the machine seed, used for the per-tick execution-CPI jitter
that gives the paper's plots their characteristic noise.
"""

from __future__ import annotations

import heapq
import itertools
import math
import zlib
from collections.abc import Callable

import numpy as np

from repro.errors import SimulationError
from repro.sim.arch import ArchModel
from repro.sim.cache import CacheHierarchy, CacheInstance
from repro.sim.core import SliceRates, compute_rates
from repro.sim.counters import CounterTable
from repro.sim.cpu_topology import Topology
from repro.sim.events import Event
from repro.sim.process import SimProcess, SimThread, TaskState
from repro.sim.scheduler import Scheduler
from repro.sim.smt import issue_share
from repro.sim.workload import Workload

#: Fixed-point iterations for contention resolution per tick. Two passes
#: are enough because capacities move pressure by at most the smoothing of
#: the power-law curves.
CONTENTION_ITERATIONS = 2


class SimMachine:
    """A complete simulated node.

    Args:
        arch: micro-architecture of every core.
        sockets: socket count.
        cores_per_socket: physical cores per socket.
        memory_bytes: installed DRAM (bounds nothing yet; reported by
            topology rendering).
        tick: scheduler tick in virtual seconds. Coarser ticks run faster;
            tiptop samples every few seconds, so 0.1–1 s ticks lose nothing.
        seed: master seed for all per-process noise.
        memory_bandwidth: peak DRAM bandwidth in bytes/s.
    """

    def __init__(
        self,
        arch: ArchModel,
        *,
        sockets: int = 1,
        cores_per_socket: int = 4,
        memory_bytes: int = 6 * 1024**3,
        tick: float = 0.1,
        seed: int = 42,
        memory_bandwidth: float = 25e9,
    ) -> None:
        if tick <= 0:
            raise SimulationError(f"tick must be positive, got {tick}")
        from repro.sim.memory import MemorySystem

        self.arch = arch
        self.topology = Topology(arch, sockets, cores_per_socket)
        self.caches = CacheHierarchy(
            arch, self.topology.pu_to_core(), self.topology.core_to_socket()
        )
        self.memory = MemorySystem(
            bandwidth_bytes_per_sec=memory_bandwidth,
            base_latency_cycles=arch.mem_latency,
        )
        self.memory_bytes = memory_bytes
        self.scheduler = Scheduler(self.topology)
        self.counters = CounterTable(arch.pmu_width, seed=seed)
        self.tick = tick
        self.seed = seed
        self.now = 0.0
        self.processes: dict[int, SimProcess] = {}
        self._threads: dict[int, SimThread] = {}
        self._next_pid = itertools.count(1000)
        self._timers: list[tuple[float, int, Callable[[], None]]] = []
        self._timer_seq = itertools.count()
        self._last_rates: dict[int, SliceRates] = {}
        self._booted = False

    # ------------------------------------------------------------------
    # Process management
    # ------------------------------------------------------------------
    def spawn(
        self,
        command: str,
        workload: Workload,
        *,
        user: str = "user",
        uid: int | None = None,
        nthreads: int = 1,
        affinity: frozenset[int] | set[int] | None = None,
        nice: int = 0,
        duty_cycle: float = 1.0,
    ) -> SimProcess:
        """Create a process and make its threads runnable immediately.

        Returns the new :class:`SimProcess` (its pid is the handle for
        everything else).
        """
        pid = next(self._next_pid)
        if uid is None:
            uid = 1000 + (zlib.crc32(user.encode()) % 1000)
        if affinity is not None:
            bad = set(affinity) - {p.pu_id for p in self.topology.pus}
            if bad:
                raise SimulationError(f"affinity references unknown PUs {sorted(bad)}")
            affinity = frozenset(affinity)
        if not 0 < duty_cycle <= 1:
            raise SimulationError(f"duty_cycle must be in (0, 1], got {duty_cycle}")
        proc = SimProcess(
            pid=pid,
            uid=uid,
            user=user,
            command=command,
            workload=workload,
            affinity=affinity,
            nice=nice,
            duty_cycle=duty_cycle,
            start_time=self.now,
            rng=np.random.default_rng((self.seed, pid)),
        )
        proc.spawn_threads(nthreads, first_tid=pid)
        # Extra threads consume ids from the same space as pids, so a
        # 4-thread process at pid P owns tids P..P+3 and the next process
        # gets pid P+4 — tids and pids never collide (as on Linux).
        for _ in range(nthreads - 1):
            next(self._next_pid)
        self.processes[pid] = proc
        for t in proc.threads:
            self._threads[t.tid] = t
            if duty_cycle < 1.0:
                t.duty_rng = np.random.default_rng((self.seed, pid, t.tid, 7))
        return proc

    def kill(self, pid: int) -> None:
        """Terminate every thread of ``pid``.

        Raises:
            SimulationError: for an unknown pid.
        """
        proc = self.process(pid)
        for t in proc.threads:
            t.mark_dead()
            self.scheduler.forget(t)

    def process(self, pid: int) -> SimProcess:
        """Look up a process by pid.

        Raises:
            SimulationError: for an unknown pid.
        """
        try:
            return self.processes[pid]
        except KeyError as exc:
            raise SimulationError(f"no such pid {pid}") from exc

    def thread(self, tid: int) -> SimThread:
        """Look up a thread by tid.

        Raises:
            SimulationError: for an unknown tid.
        """
        try:
            return self._threads[tid]
        except KeyError as exc:
            raise SimulationError(f"no such tid {tid}") from exc

    def live_processes(self) -> list[SimProcess]:
        """Processes with at least one live thread, by pid."""
        return sorted(
            (p for p in self.processes.values() if p.alive), key=lambda p: p.pid
        )

    def at(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire at virtual time ``when``.

        Used by experiment scripts for job arrivals (Fig. 10's user2 burst).

        Raises:
            SimulationError: when ``when`` is in the virtual past.
        """
        if when < self.now:
            raise SimulationError(f"cannot schedule at {when} < now {self.now}")
        heapq.heappush(self._timers, (when, next(self._timer_seq), callback))

    # ------------------------------------------------------------------
    # Time advance
    # ------------------------------------------------------------------
    def run_for(self, seconds: float) -> None:
        """Advance the virtual clock by ``seconds``."""
        self.run_until(self.now + seconds)

    def run_until(self, deadline: float) -> None:
        """Advance the virtual clock to ``deadline`` in whole ticks."""
        while self.now < deadline - 1e-12:
            self._step(min(self.tick, deadline - self.now))

    def _fire_timers(self) -> None:
        while self._timers and self._timers[0][0] <= self.now + 1e-12:
            _, _, callback = heapq.heappop(self._timers)
            callback()

    def _step(self, dt: float) -> None:
        self._fire_timers()
        runnable = [
            t
            for t in self._threads.values()
            if t.state is TaskState.RUNNABLE
            and (
                t.duty_rng is None
                or t.duty_rng.random() < t.process.duty_cycle
            )
        ]
        dispatch = self.scheduler.dispatch(runnable, dt)
        assignment = dispatch.assignment

        rates = self._resolve_contention(assignment)

        scheduled_tids: set[int] = set()
        for pu_id, thread in assignment.items():
            self._run_slice(thread, pu_id, rates.get(thread.tid), dt)
            scheduled_tids.add(thread.tid)

        # Counter bookkeeping for unscheduled-but-alive threads: enabled
        # time advances, running time does not.
        for tid, thread in self._threads.items():
            if tid not in scheduled_tids and thread.alive:
                self.counters.accrue(
                    tid, {}, wall_dt=dt, scheduled_dt=0.0, alive=True
                )

        self.now += dt
        self._fire_timers()

    # ------------------------------------------------------------------
    # Contention resolution
    # ------------------------------------------------------------------
    def _active_per_core(self, assignment: dict[int, SimThread]) -> dict[int, int]:
        per_core: dict[int, int] = {}
        for pu_id in assignment:
            core = self.topology.pu(pu_id).core_id
            per_core[core] = per_core.get(core, 0) + 1
        return per_core

    def _resolve_contention(
        self, assignment: dict[int, SimThread]
    ) -> dict[int, SliceRates]:
        """Fixed-point on access pressures -> capacities -> rates."""
        if not assignment:
            return {}
        per_core = self._active_per_core(assignment)
        shares = {
            pu: issue_share(self.arch, per_core[self.topology.pu(pu).core_id])
            for pu in assignment
        }
        # Initial instruction-rate guess: previous tick's rates, else solo.
        inst_rate: dict[int, float] = {}
        rates: dict[int, SliceRates] = {}
        for pu, thread in assignment.items():
            located = thread.current_phase()
            if located is None:
                continue
            prev = self._last_rates.get(thread.tid)
            guess_cpi = prev.cpi if prev else 1.0
            inst_rate[thread.tid] = self.arch.freq_hz / guess_cpi

        mem_latency = self.arch.mem_latency
        for _ in range(CONTENTION_ITERATIONS):
            pressures: dict[CacheInstance, dict[int, float]] = {}
            demand = 0.0
            for pu, thread in assignment.items():
                located = thread.current_phase()
                if located is None:
                    continue
                phase, _ = located
                path = self.caches.path_for_pu(pu)
                prev = rates.get(thread.tid)
                if prev is not None:
                    profile = prev.miss_profile
                    accesses = profile.accesses
                    demand += (
                        profile.misses[-1]
                        * inst_rate[thread.tid]
                        * path[-1].spec.line
                    )
                else:
                    accesses = [phase.mix.mem_refs] * len(path)
                for inst, acc in zip(path, accesses):
                    pressures.setdefault(inst, {})[thread.tid] = (
                        acc * inst_rate.get(thread.tid, 0.0)
                    )
            mem_latency = self.memory.effective_latency(demand)
            for pu, thread in assignment.items():
                located = thread.current_phase()
                if located is None:
                    continue
                phase, _ = located
                caps = self.caches.levels_with_capacity(pu, pressures, thread.tid)
                r = compute_rates(
                    self.arch,
                    phase,
                    caps,
                    mem_latency_cycles=mem_latency,
                    issue_share=shares[pu],
                )
                rates[thread.tid] = r
                inst_rate[thread.tid] = self.arch.freq_hz / r.cpi
        return rates

    # ------------------------------------------------------------------
    # Instruction retirement
    # ------------------------------------------------------------------
    def _run_slice(
        self,
        thread: SimThread,
        pu_id: int,
        contended: SliceRates | None,
        dt: float,
    ) -> None:
        """Retire instructions on ``thread`` for one tick on ``pu_id``."""
        located = thread.current_phase()
        if located is None:
            self._reap(thread, dt)
            return

        cycle_budget = self.arch.freq_hz * dt
        consumed_cycles = 0.0
        deltas: dict[Event, float] = {}
        noise = math.exp(
            thread.process.rng.normal(0.0, located[0].noise)
        ) if located[0].noise > 0 else 1.0

        base = contended
        while cycle_budget > 1e-6:
            located = thread.current_phase()
            if located is None:
                break
            phase, remaining = located
            if base is not None and base.miss_profile.accesses:
                rates = base
            else:
                caps = [(s, float(s.size)) for s in self.arch.cache_levels]
                rates = compute_rates(self.arch, phase, caps)
            # Jitter only the execution component; penalty cycles are
            # physical latencies and stay put.
            cpi = rates.cpi_exec * noise + (rates.cpi - rates.cpi_exec)
            instructions = min(cycle_budget / cpi, remaining)
            cycles = instructions * cpi
            for event, per_instr in rates.events.items():
                if event is Event.CYCLES:
                    deltas[event] = deltas.get(event, 0.0) + cycles
                else:
                    deltas[event] = deltas.get(event, 0.0) + per_instr * instructions
            thread.retired += instructions
            thread.cycles += cycles
            consumed_cycles += cycles
            cycle_budget -= cycles
            if thread.current_phase() is None:
                break
            # Crossing into a new phase invalidates the contended rates;
            # recompute solo for the remainder of this tick (one tick of
            # slight inaccuracy at each boundary).
            if remaining <= instructions + 1e-9:
                base = None

        scheduled_dt = dt * min(1.0, consumed_cycles / (self.arch.freq_hz * dt))
        thread.cpu_time += scheduled_dt
        done = thread.current_phase() is None
        # A thread that finishes mid-tick stops its counters' enabled clock
        # at death; otherwise user-space scaling (enabled/running) would
        # extrapolate the dead fraction of the tick as multiplexed time.
        self.counters.accrue(
            thread.tid,
            deltas,
            wall_dt=scheduled_dt if done else dt,
            scheduled_dt=scheduled_dt,
            alive=True,
        )
        if contended is not None:
            self._last_rates[thread.tid] = contended
        if thread.current_phase() is None:
            self._reap(thread, 0.0)

    def _reap(self, thread: SimThread, dt: float) -> None:
        if thread.state is TaskState.DEAD:
            return
        thread.mark_dead()
        self.scheduler.forget(thread)
        self._last_rates.pop(thread.tid, None)
