"""Partition chaos at the transport boundary: exactness under faults.

The split-brain oracle, pinned as tests: for any seeded partition/heal
schedule, the supervised and fleet engines must produce conformance
digests bitwise-equal to the untouched serial engine — lost requests are
retried, lost replies are fenced by ``(incarnation, epoch)`` instead of
double-applied, duplicates are discarded, and a healed link resumes
mid-run. Plus the close-path regression: a socket transport whose peer
is already gone must tear down quietly, never masking the original
:class:`~repro.errors.WorkerFailure` with a teardown error.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import WorkerFailure
from repro.sim.grid import Grid, NodeSpec, QueueSpec
from repro.sim.netchaos import NetChaosPlan, NetFaultSpec
from repro.sim.parallel import TRANSPORT_NAMES
from repro.sim.supervisor import Supervision
from repro.sim.transport import make_transport
from repro.sim.workloads import datacenter

GiB = 1024**3

SUPERVISION = Supervision(deadline=2.0, backoff_base=0.0)

#: Every split-brain shape on a deterministic schedule: a two-attempt
#: partition that must heal mid-run, a half-open link whose stale reply
#: the fence must reject, a duplicated reply whose second copy must be
#: discarded, and a single lost request.
HOT = NetChaosPlan(
    seed=0,
    specs=(
        NetFaultSpec("partition", at_epochs=frozenset({0}), link=0,
                     duration=2),
        NetFaultSpec("half_open", at_epochs=frozenset({1}), link=1),
        NetFaultSpec("duplicate", at_epochs=frozenset({1}), link=0),
        NetFaultSpec("drop", at_epochs=frozenset({2}), link=1),
    ),
)


def _fleet():
    return [
        NodeSpec(name="a0", sockets=1, cores_per_socket=1,
                 memory_bytes=4 * GiB),
        NodeSpec(name="a1", sockets=1, cores_per_socket=2,
                 memory_bytes=4 * GiB),
        NodeSpec(name="a2", sockets=1, cores_per_socket=1,
                 memory_bytes=2 * GiB),
    ]


def _queues():
    return [
        QueueSpec("quick", max_wallclock=6.0, memory_limit=2 * GiB,
                  priority=2),
        QueueSpec("slow", max_wallclock=float("inf"), memory_limit=4 * GiB,
                  priority=1),
    ]


def _churn(grid: Grid, seed: int) -> None:
    rng = random.Random(seed)
    for segment in range(2):
        for i in range(rng.randint(2, 4)):
            name = f"s{segment}j{i}"
            job = datacenter.compute_job(
                name, rng.choice([0.9, 1.2]),
                duration_hint=rng.choice([2.0, 5.0, 9.0]),
            )
            grid.submit(name, job, queue=rng.choice(["quick", "slow"]),
                        memory_bytes=rng.choice([1, 2]) * GiB)
        grid.run_for(rng.choice([3.0, 4.5]))


def _serial_digest(seed: int) -> str:
    with Grid(_fleet(), _queues(), tick=1.0, seed=seed, workers=1,
              engine="serial") as grid:
        _churn(grid, seed)
        return grid.conformance_digest()


def _chaotic_run(seed: int, *, engine: str = "supervised",
                 transport: str | None = None, hosts: int | None = None,
                 plan: NetChaosPlan = HOT):
    with Grid(_fleet(), _queues(), tick=1.0, seed=seed, workers=2,
              engine=engine, transport=transport, hosts=hosts,
              net_chaos=plan,
              supervision=SUPERVISION if engine == "supervised"
              else None) as grid:
        _churn(grid, seed)
        return (grid.conformance_digest(), grid.engine.net_faults(),
                grid.engine.fenced_replies(),
                dict(getattr(grid.engine, "stats", {})))


# -- the split-brain oracle ---------------------------------------------------

@pytest.mark.parametrize("transport", TRANSPORT_NAMES)
def test_partitioned_supervised_matches_serial(transport):
    reference = _serial_digest(11)
    digest, faults, _fenced, stats = _chaotic_run(11, transport=transport)
    assert digest == reference, (
        f"transport {transport!r} diverged under partition chaos"
    )
    assert faults >= 1
    assert stats["failures"]["unreachable"] >= 1
    assert stats["restarts"] >= 1


def test_half_open_reply_is_fenced_not_double_applied():
    """The reason fencing exists: a half-open link applies the epoch but
    loses the reply; after the restart the stale reply surfaces and must
    be rejected by its incarnation fence — double-applying it would show
    up as a digest divergence."""
    reference = _serial_digest(11)
    digest, _faults, fenced, _stats = _chaotic_run(11, transport="socket")
    assert digest == reference
    assert fenced >= 1


def test_two_attempt_partition_heals_after_restarts():
    plan = NetChaosPlan(
        seed=0,
        specs=(NetFaultSpec("partition", at_epochs=frozenset({0}), link=0,
                            duration=2),),
    )
    reference = _serial_digest(7)
    digest, faults, _fenced, stats = _chaotic_run(7, plan=plan)
    assert digest == reference
    assert faults == 2  # both attempts inside the partition window
    assert stats["failures"]["unreachable"] == 2
    assert stats["restarts"] == 2  # then the link healed — no adopt
    assert stats["adopted_shards"] == 0
    assert not stats["degraded"]


def test_partition_outliving_the_ladder_is_adopted():
    """A partition longer than poison_limit models a link that never
    heals: the shard is adopted in-process and the run still finishes
    with the serial digest (degraded availability, undamaged truth)."""
    plan = NetChaosPlan(
        seed=0,
        specs=(NetFaultSpec("partition", at_epochs=frozenset({0}), link=0,
                            duration=99),),
    )
    reference = _serial_digest(7)
    digest, _faults, _fenced, stats = _chaotic_run(7, plan=plan)
    assert digest == reference
    assert stats["adopted_shards"] >= 1


def test_fleet_engine_survives_partition_chaos():
    reference = _serial_digest(23)
    digest, faults, _fenced, _stats = _chaotic_run(
        23, engine="fleet", hosts=2, plan=HOT
    )
    assert digest == reference
    assert faults >= 1


def test_seeded_schedule_replays_identically():
    """--net-chaos SEED must replay byte-identically: two runs of the
    same seeded plan agree on digest AND on every recovery counter."""
    plan = NetChaosPlan.from_seed(8, intensity=6.0)
    a = _chaotic_run(11, plan=plan)
    b = _chaotic_run(11, plan=plan)
    assert a == b


# -- satellite: teardown must not mask the original failure ------------------


def _entries():
    return [
        (NodeSpec(name="n0", sockets=1, cores_per_socket=1,
                  memory_bytes=4 * GiB), 11),
    ]


def test_socket_close_tolerates_dead_peer():
    """Kill the agent, observe the typed WorkerFailure, then close():
    teardown over the half-closed socket must not raise — a secondary
    ConnectionError here would mask the failure the engine is already
    handling."""
    t = make_transport("socket", 0, _entries(), 0.5)
    t.spawn([], 0)
    assert t.recv(30.0) == ("ok", "ready")
    assert t.proc is not None
    t.proc.kill()
    t.proc.join()
    with pytest.raises(WorkerFailure):
        t.send(("advance", [], 1, 0.0))
        t.recv(5.0)
    t.close(grace=1.0)  # must be quiet


def test_fork_close_tolerates_dead_peer():
    t = make_transport("fork", 0, _entries(), 0.5)
    t.spawn([], 0)
    assert t.recv(30.0) == ("ok", "ready")
    assert t.proc is not None
    t.proc.kill()
    t.proc.join()
    with pytest.raises(WorkerFailure):
        t.send(("advance", [], 1, 0.0))
        t.recv(5.0)
    t.close(grace=1.0)
