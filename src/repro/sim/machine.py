"""The simulated machine: topology + caches + memory + scheduler + clock.

:class:`SimMachine` advances a virtual clock in fixed ticks. Each tick it

1. fires any due timed events (job arrivals/kills from experiment scripts),
2. dispatches runnable threads to PUs (CFS-like, affinity-aware),
3. resolves cache-capacity contention between co-scheduled tasks by a
   short fixed-point iteration on access pressures,
4. inflates DRAM latency with aggregate LLC-miss bandwidth,
5. retires instructions per scheduled thread through its workload phases,
   accruing hardware events into the kernel counter table, and
6. reaps threads whose workloads completed.

Everything is deterministic: the only randomness is per-process Generators
seeded from the machine seed, used for the per-tick execution-CPI jitter
that gives the paper's plots their characteristic noise.
"""

from __future__ import annotations

import heapq
import itertools
import math
import zlib
from collections.abc import Callable

import numpy as np

from repro.errors import SimulationError
from repro.sim.arch import ArchModel
from repro.sim.cache import CacheHierarchy, CacheInstance
from repro.sim.columns import ColumnKernel
from repro.sim.core import RateCache, SliceRates, compute_rates
from repro.sim.counters import CounterTable
from repro.sim.cpu_topology import Topology
from repro.sim.events import Event
from repro.sim.process import SimProcess, SimThread, TaskState
from repro.sim.scheduler import Scheduler
from repro.sim.smt import issue_share
from repro.sim.workload import Workload

#: Fixed-point iterations for contention resolution per tick. Two passes
#: are enough because capacities move pressure by at most the smoothing of
#: the power-law curves.
CONTENTION_ITERATIONS = 2


class SimMachine:
    """A complete simulated node.

    Args:
        arch: micro-architecture of every core.
        sockets: socket count.
        cores_per_socket: physical cores per socket.
        memory_bytes: installed DRAM (bounds nothing yet; reported by
            topology rendering).
        tick: scheduler tick in virtual seconds. Coarser ticks run faster;
            tiptop samples every few seconds, so 0.1–1 s ticks lose nothing.
        seed: master seed for all per-process noise.
        memory_bandwidth: peak DRAM bandwidth in bytes/s.
        rate_cache: optional shared :class:`RateCache`. Machines in one
            grid shard pass a common cache so identical (arch, phase,
            capacity) rate computations are deduplicated fleet-wide; the
            memo is exact, so sharing never changes results.
    """

    def __init__(
        self,
        arch: ArchModel,
        *,
        sockets: int = 1,
        cores_per_socket: int = 4,
        memory_bytes: int = 6 * 1024**3,
        tick: float = 0.1,
        seed: int = 42,
        memory_bandwidth: float = 25e9,
        rate_cache: RateCache | None = None,
    ) -> None:
        if tick <= 0:
            raise SimulationError(f"tick must be positive, got {tick}")
        from repro.sim.memory import MemorySystem

        self.arch = arch
        self.topology = Topology(arch, sockets, cores_per_socket)
        self.caches = CacheHierarchy(
            arch, self.topology.pu_to_core(), self.topology.core_to_socket()
        )
        self.memory = MemorySystem(
            bandwidth_bytes_per_sec=memory_bandwidth,
            base_latency_cycles=arch.mem_latency,
        )
        self.memory_bytes = memory_bytes
        self.scheduler = Scheduler(self.topology)
        self.counters = CounterTable(arch.pmu_width, seed=seed)
        self.tick = tick
        self.seed = seed
        self.now = 0.0
        self.processes: dict[int, SimProcess] = {}
        self._threads: dict[int, SimThread] = {}
        self._next_pid = itertools.count(1000)
        self._timers: list[tuple[float, int, Callable[[], None]]] = []
        self._timer_seq = itertools.count()
        self._last_rates: dict[int, SliceRates] = {}
        self._booted = False
        # Batched-path memos (run_ticks). Both are exact: the rate cache
        # keys pure-function inputs by identity, and the contention cache
        # keys whole co-schedules by (pu, phase, previous-rates) identity.
        # Entries pin the objects behind the ids they key on, so eviction
        # is the only way an id leaves the cache.
        self._rate_cache = RateCache() if rate_cache is None else rate_cache
        self._contention_cache: dict[tuple, tuple] = {}
        # Columnar tick engine (lazily built on first run_ticks).
        self._kernel: ColumnKernel | None = None
        #: pid -> first tick boundary at/after which the process was seen
        #: dead. This is exactly when an external per-tick reaper (the
        #: grid's) would observe the death, recorded here so epoch-batched
        #: engines can reconstruct finish times without stepping per tick.
        self.death_observed: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Process management
    # ------------------------------------------------------------------
    def spawn(
        self,
        command: str,
        workload: Workload,
        *,
        user: str = "user",
        uid: int | None = None,
        nthreads: int = 1,
        affinity: frozenset[int] | set[int] | None = None,
        nice: int = 0,
        duty_cycle: float = 1.0,
    ) -> SimProcess:
        """Create a process and make its threads runnable immediately.

        Returns the new :class:`SimProcess` (its pid is the handle for
        everything else).
        """
        pid = next(self._next_pid)
        if uid is None:
            uid = 1000 + (zlib.crc32(user.encode()) % 1000)
        if affinity is not None:
            bad = set(affinity) - {p.pu_id for p in self.topology.pus}
            if bad:
                raise SimulationError(f"affinity references unknown PUs {sorted(bad)}")
            affinity = frozenset(affinity)
        if not 0 < duty_cycle <= 1:
            raise SimulationError(f"duty_cycle must be in (0, 1], got {duty_cycle}")
        proc = SimProcess(
            pid=pid,
            uid=uid,
            user=user,
            command=command,
            workload=workload,
            affinity=affinity,
            nice=nice,
            duty_cycle=duty_cycle,
            start_time=self.now,
            rng=np.random.default_rng((self.seed, pid)),
        )
        proc.spawn_threads(nthreads, first_tid=pid)
        # Extra threads consume ids from the same space as pids, so a
        # 4-thread process at pid P owns tids P..P+3 and the next process
        # gets pid P+4 — tids and pids never collide (as on Linux).
        for _ in range(nthreads - 1):
            next(self._next_pid)
        self.processes[pid] = proc
        for t in proc.threads:
            self._threads[t.tid] = t
            if duty_cycle < 1.0:
                t.duty_rng = np.random.default_rng((self.seed, pid, t.tid, 7))
        return proc

    def kill(self, pid: int) -> None:
        """Terminate every thread of ``pid``.

        Raises:
            SimulationError: for an unknown pid.
        """
        proc = self.process(pid)
        for t in proc.threads:
            t.mark_dead()
            self.scheduler.forget(t)
        # Kills land at timer boundaries (or between runs), where ``now``
        # already is a tick boundary — that is when a reaper first sees it.
        self.death_observed.setdefault(pid, self.now)

    def process(self, pid: int) -> SimProcess:
        """Look up a process by pid.

        Raises:
            SimulationError: for an unknown pid.
        """
        try:
            return self.processes[pid]
        except KeyError as exc:
            raise SimulationError(f"no such pid {pid}") from exc

    def thread(self, tid: int) -> SimThread:
        """Look up a thread by tid.

        Raises:
            SimulationError: for an unknown tid.
        """
        try:
            return self._threads[tid]
        except KeyError as exc:
            raise SimulationError(f"no such tid {tid}") from exc

    def live_processes(self) -> list[SimProcess]:
        """Processes with at least one live thread, by pid."""
        return sorted(
            (p for p in self.processes.values() if p.alive), key=lambda p: p.pid
        )

    def at(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire at virtual time ``when``.

        Used by experiment scripts for job arrivals (Fig. 10's user2 burst).

        Raises:
            SimulationError: when ``when`` is in the virtual past.
        """
        if when < self.now:
            raise SimulationError(f"cannot schedule at {when} < now {self.now}")
        heapq.heappush(self._timers, (when, next(self._timer_seq), callback))

    def spawn_at(
        self, when: float, command: str, workload: Workload, **kwargs
    ) -> None:
        """Schedule a :meth:`spawn` at virtual time ``when``.

        Convenience for churn scripts (chaos sweeps, Fig. 10-style job
        arrivals): the spawn happens inside the tick loop, exactly like a
        user starting a job mid-run.
        """
        self.at(when, lambda: self.spawn(command, workload, **kwargs))

    def kill_at(self, when: float, pid: int) -> None:
        """Schedule a :meth:`kill` of ``pid`` at virtual time ``when``.

        A pid that is already gone by then is ignored — the churn script's
        victim may have exited on its own, as on a real machine.
        """

        def _kill() -> None:
            proc = self.processes.get(pid)
            if proc is not None and proc.alive:
                self.kill(pid)

        self.at(when, _kill)

    # ------------------------------------------------------------------
    # Time advance
    # ------------------------------------------------------------------
    def run_for(self, seconds: float) -> None:
        """Advance the virtual clock by ``seconds``."""
        self.run_until(self.now + seconds)

    def run_until(self, deadline: float) -> None:
        """Advance the virtual clock to ``deadline`` in whole ticks.

        Tick accounting is integral: the span is converted to a whole tick
        count once, every full tick steps by exactly ``self.tick``, and at
        most one fractional step covers the remainder. The old form — loop
        while ``now < deadline - 1e-12``, stepping ``min(tick, rest)`` —
        compared an *absolute* epsilon against a clock whose ulp outgrows
        it (ulp(3.6e5) is already ~6e-11), so long runs drifted by whole
        ticks. Counting ticks as integers keeps the step sequence identical
        to :meth:`run_ticks` at any clock magnitude.
        """
        span = deadline - self.now
        if span <= 0:
            return
        quotient = span / self.tick
        # Absolute + relative slack: a quotient that is integral up to
        # accumulated float error (a few ulps) must not lose its last tick
        # to truncation.
        whole = int(quotient + max(1e-9, quotient * 1e-12))
        for _ in range(whole):
            self._step(self.tick)
        remainder = deadline - self.now
        if remainder > self.tick * 1e-9:
            self._step(remainder)

    def run_ticks(self, n: int) -> None:
        """Advance exactly ``n`` whole ticks on the batched fast path.

        Produces bitwise-identical machine, counter and RNG state to ``n``
        successive scalar ticks (``_step(tick)`` each), but amortises the
        per-tick model evaluation three ways:

        * **Contention memo** — the fixed-point of
          :meth:`_resolve_contention` is a deterministic pure function of
          the co-schedule shape: which PUs run which phases, seeded with
          which previous-tick rates. Over-subscribed nodes revisit the same
          co-schedules as the scheduler's round-robin orbit repeats, so the
          resolved :class:`SliceRates` are cached per co-schedule key and
          replayed instead of re-iterated.
        * **Rate memo** — the :class:`RateCache` shared by both memo layers
          deduplicates the inner :func:`compute_rates` calls.
        * **Lazy idle clock** — unscheduled-but-alive tasks only advance
          their counters' ``time_enabled``; instead of touching every
          counter every tick, each task records how many ticks it has been
          accounted for and the arrears are folded in bulk
          (:meth:`CounterTable.advance_idle`) right before the task runs,
          before any timer callback can observe counter state, and at the
          end of the batch.

        Correctness does not depend on cache hit rates (misses fall back to
        the scalar code paths on the very same objects); only speed does.

        The loop itself lives in :class:`~repro.sim.columns.ColumnKernel`:
        per-thread scheduling state is mirrored into parallel arrays so the
        runnable scan, fairness sort, idle-clock arrears and (for simple
        counter sets) the per-slice event accrual all run as array
        operations instead of per-object Python loops.
        """
        if n < 0:
            raise SimulationError(f"cannot run a negative tick count {n}")
        if self._kernel is None:
            self._kernel = ColumnKernel(self)
        self._kernel.run(n)

    def kernel_stats(self) -> dict[str, int]:
        """Columnar-kernel health: slot occupancy and fast-path coverage.

        Observability only — never part of conformance digests. A high
        ``fallback_slices`` share means the population's counter sets are
        not *simple* (sampling / disabled / multiplexed) and the node is
        paying scalar prices.
        """
        kernel = self._kernel
        columns = self.counters.columns
        return {
            "counter_slots_live": columns.live_slots(),
            "counter_slot_capacity": columns.capacity,
            "tracked_tasks": kernel.size if kernel is not None else 0,
            "fast_slices": kernel.fast_slices if kernel is not None else 0,
            "fallback_slices": (
                kernel.fallback_slices if kernel is not None else 0
            ),
        }

    def _fire_timers(self) -> None:
        while self._timers and self._timers[0][0] <= self.now + 1e-12:
            _, _, callback = heapq.heappop(self._timers)
            callback()

    def _step(self, dt: float) -> None:
        self._fire_timers()
        runnable = [
            t
            for t in self._threads.values()
            if t.state is TaskState.RUNNABLE
            and (
                t.duty_rng is None
                or t.duty_rng.random() < t.process.duty_cycle
            )
        ]
        dispatch = self.scheduler.dispatch(runnable, dt)
        assignment = dispatch.assignment

        rates = self._resolve_contention(assignment)

        scheduled_tids: set[int] = set()
        for pu_id, thread in assignment.items():
            self._run_slice(thread, pu_id, rates.get(thread.tid), dt)
            scheduled_tids.add(thread.tid)

        # Counter bookkeeping for unscheduled-but-alive threads: enabled
        # time advances, running time does not.
        for tid, thread in self._threads.items():
            if tid not in scheduled_tids and thread.alive:
                self.counters.accrue(
                    tid, {}, wall_dt=dt, scheduled_dt=0.0, alive=True
                )

        self.now += dt
        self._fire_timers()

    # ------------------------------------------------------------------
    # Contention resolution
    # ------------------------------------------------------------------
    def _active_per_core(self, assignment: dict[int, SimThread]) -> dict[int, int]:
        per_core: dict[int, int] = {}
        for pu_id in assignment:
            core = self.topology.pu(pu_id).core_id
            per_core[core] = per_core.get(core, 0) + 1
        return per_core

    def _resolve_contention(
        self,
        assignment: dict[int, SimThread],
        located: dict[int, tuple] | None = None,
        rate_cache: RateCache | None = None,
    ) -> dict[int, SliceRates]:
        """Fixed-point on access pressures -> capacities -> rates.

        ``located`` optionally pre-resolves ``thread.current_phase()`` per
        tid (the lookup is pure within a tick, so hoisting it is exact);
        ``rate_cache`` optionally memoises the inner ``compute_rates``
        calls. Both default to the plain scalar behaviour.
        """
        if not assignment:
            return {}
        if located is None:
            located = {
                thread.tid: thread.current_phase()
                for thread in assignment.values()
            }
        per_core = self._active_per_core(assignment)
        shares = {
            pu: issue_share(self.arch, per_core[self.topology.pu(pu).core_id])
            for pu in assignment
        }
        # Initial instruction-rate guess: previous tick's rates, else solo.
        inst_rate: dict[int, float] = {}
        rates: dict[int, SliceRates] = {}
        for pu, thread in assignment.items():
            if located[thread.tid] is None:
                continue
            prev = self._last_rates.get(thread.tid)
            guess_cpi = prev.cpi if prev else 1.0
            inst_rate[thread.tid] = self.arch.freq_hz / guess_cpi

        mem_latency = self.arch.mem_latency
        for _ in range(CONTENTION_ITERATIONS):
            pressures: dict[CacheInstance, dict[int, float]] = {}
            demand = 0.0
            for pu, thread in assignment.items():
                loc = located[thread.tid]
                if loc is None:
                    continue
                phase, _ = loc
                path = self.caches.path_for_pu(pu)
                prev = rates.get(thread.tid)
                if prev is not None:
                    profile = prev.miss_profile
                    accesses = profile.accesses
                    demand += (
                        profile.misses[-1]
                        * inst_rate[thread.tid]
                        * path[-1].spec.line
                    )
                else:
                    accesses = [phase.mix.mem_refs] * len(path)
                for inst, acc in zip(path, accesses):
                    pressures.setdefault(inst, {})[thread.tid] = (
                        acc * inst_rate.get(thread.tid, 0.0)
                    )
            mem_latency = self.memory.effective_latency(demand)
            for pu, thread in assignment.items():
                loc = located[thread.tid]
                if loc is None:
                    continue
                phase, _ = loc
                caps = self.caches.levels_with_capacity(pu, pressures, thread.tid)
                if rate_cache is not None:
                    r = rate_cache.rates(
                        self.arch,
                        phase,
                        caps,
                        mem_latency_cycles=mem_latency,
                        issue_share=shares[pu],
                    )
                else:
                    r = compute_rates(
                        self.arch,
                        phase,
                        caps,
                        mem_latency_cycles=mem_latency,
                        issue_share=shares[pu],
                    )
                rates[thread.tid] = r
                inst_rate[thread.tid] = self.arch.freq_hz / r.cpi
        return rates

    #: Size cap for the co-schedule memo (entries are small; the cap only
    #: guards pathological populations with unbounded phase turnover).
    _CONTENTION_CACHE_MAX = 8192

    def _cached_contention(
        self,
        assignment: dict[int, SimThread],
        located: dict[int, tuple],
    ) -> dict[int, SliceRates]:
        """Memoised :meth:`_resolve_contention` for the batched path.

        The fixed-point depends only on the *shape* of the co-schedule:
        (pu, active phase, previous-tick rates) per slot, in assignment
        order (the order matters because bus demand accumulates in it).
        Phases and SliceRates are immutable, so identity-keying them makes
        a cache hit return the very objects the scalar path would have
        recomputed.
        """
        if not assignment:
            return {}
        key = tuple(
            (
                pu,
                id(loc[0]) if (loc := located[thread.tid]) is not None else None,
                id(prev) if (prev := self._last_rates.get(thread.tid)) is not None else None,
            )
            for pu, thread in assignment.items()
        )
        entry = self._contention_cache.get(key)
        threads = list(assignment.values())
        if entry is not None:
            results = entry[0]
            return {
                thread.tid: r
                for thread, r in zip(threads, results)
                if r is not None
            }
        rates = self._resolve_contention(
            assignment, located=located, rate_cache=self._rate_cache
        )
        results = tuple(rates.get(thread.tid) for thread in threads)
        keepalive = tuple(
            (located[thread.tid], self._last_rates.get(thread.tid))
            for thread in threads
        )
        if len(self._contention_cache) >= self._CONTENTION_CACHE_MAX:
            # Oldest-half FIFO, same rationale as RateCache._evict: keep
            # the recent (live-orbit) half instead of thrashing to cold.
            for stale in list(
                itertools.islice(
                    self._contention_cache, self._CONTENTION_CACHE_MAX // 2
                )
            ):
                del self._contention_cache[stale]
        self._contention_cache[key] = (results, keepalive)
        return rates

    # ------------------------------------------------------------------
    # Instruction retirement
    # ------------------------------------------------------------------
    def _run_slice(
        self,
        thread: SimThread,
        pu_id: int,
        contended: SliceRates | None,
        dt: float,
        rate_cache: RateCache | None = None,
    ) -> None:
        """Retire instructions on ``thread`` for one tick on ``pu_id``.

        ``current_phase()`` is pure between mutations of ``thread.retired``,
        so each phase position is located exactly once per retirement step
        and the result reused for the loop/termination checks.
        """
        located = thread.current_phase()
        if located is None:
            self._reap(thread, dt)
            return

        cycle_budget = self.arch.freq_hz * dt
        consumed_cycles = 0.0
        deltas: dict[Event, float] = {}
        noise = math.exp(
            thread.process.rng.normal(0.0, located[0].noise)
        ) if located[0].noise > 0 else 1.0

        base = contended
        while cycle_budget > 1e-6 and located is not None:
            phase, remaining = located
            if base is not None and base.miss_profile.accesses:
                rates = base
            elif rate_cache is not None:
                caps = [(s, float(s.size)) for s in self.arch.cache_levels]
                rates = rate_cache.rates(self.arch, phase, caps)
            else:
                caps = [(s, float(s.size)) for s in self.arch.cache_levels]
                rates = compute_rates(self.arch, phase, caps)
            # Jitter only the execution component; penalty cycles are
            # physical latencies and stay put.
            cpi = rates.cpi_exec * noise + (rates.cpi - rates.cpi_exec)
            instructions = min(cycle_budget / cpi, remaining)
            cycles = instructions * cpi
            for event, per_instr in rates.events.items():
                if event is Event.CYCLES:
                    deltas[event] = deltas.get(event, 0.0) + cycles
                else:
                    deltas[event] = deltas.get(event, 0.0) + per_instr * instructions
            thread.retired += instructions
            thread.cycles += cycles
            consumed_cycles += cycles
            cycle_budget -= cycles
            located = thread.current_phase()
            if located is None:
                break
            # Crossing into a new phase invalidates the contended rates;
            # recompute solo for the remainder of this tick (one tick of
            # slight inaccuracy at each boundary).
            if remaining <= instructions + 1e-9:
                base = None

        scheduled_dt = dt * min(1.0, consumed_cycles / (self.arch.freq_hz * dt))
        thread.cpu_time += scheduled_dt
        done = located is None
        # A thread that finishes mid-tick stops its counters' enabled clock
        # at death; otherwise user-space scaling (enabled/running) would
        # extrapolate the dead fraction of the tick as multiplexed time.
        self.counters.accrue(
            thread.tid,
            deltas,
            wall_dt=scheduled_dt if done else dt,
            scheduled_dt=scheduled_dt,
            alive=True,
        )
        if contended is not None:
            self._last_rates[thread.tid] = contended
        if done:
            self._reap(thread, dt)

    def _reap(self, thread: SimThread, dt: float) -> None:
        if thread.state is TaskState.DEAD:
            return
        thread.mark_dead()
        self.scheduler.forget(thread)
        self._last_rates.pop(thread.tid, None)
        proc = thread.process
        if not proc.alive:
            # ``now`` is still pre-increment inside a slice: the death is
            # first observable at the end of this tick.
            self.death_observed.setdefault(proc.pid, self.now + dt)
