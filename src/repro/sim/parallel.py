"""Shard-aware grid execution engines (scaling §3.4's fleet).

The paper's production deployment is ~100 SGE nodes; simulating such a
fleet one scalar tick at a time makes wall-clock grow linearly in fleet
size. Nodes, however, are *shared-nothing between dispatch decisions*: a
:class:`~repro.sim.grid.Grid` only couples its machines through the
dispatcher, and the dispatcher only has something to do when a job arrives
or a slot frees. That property is what batch schedulers exploit to fan
work out across hosts, and what this module exploits to advance nodes
concurrently between **dispatch epochs**.

Five engines implement the same contract:

* ``legacy`` — the original per-tick loop (dispatch, advance every node by
  one scalar tick, reap). Kept as the reference semantics and the
  benchmark baseline.
* ``serial`` — one in-process :class:`Shard` holding every node, advanced
  a whole epoch at a time through the batched
  :meth:`~repro.sim.machine.SimMachine.run_ticks` memo path with a shard-
  shared :class:`~repro.sim.core.RateCache`. The default and the CI path.
* ``sharded`` — persistent worker agents, each owning a disjoint
  :class:`Shard` behind a pluggable
  :class:`~repro.sim.transport.ShardTransport` (``inproc`` serial
  zero-copy, ``fork`` multiprocessing pipes, ``socket`` binary frames over
  a persistent stream socket). Machines are constructed *inside* the agent
  from (spec, seed) and never cross the process boundary; per epoch
  exactly one compact message round-trip happens per worker (spawn/preempt
  commands in, job-exit/bound/cache snapshots out).
* ``supervised`` (:mod:`repro.sim.supervisor`) — the sharded engine under
  a supervision tree: deadlines, journal-replay restarts, adoption,
  degrade-to-serial.
* ``fleet`` (:mod:`repro.sim.fleet`) — a two-level tree: a fleet
  supervisor over per-host supervised engines, scaling the same epoch
  protocol to hundreds of simulated nodes.

Determinism. A machine's evolution is a pure function of its spec, seed,
tick, and the timed sequence of spawns/kills applied to it. All three
engines apply the same commands at the same virtual boundaries and advance
by the same whole-tick counts, so job states, finish times and per-node
counter tables are bitwise identical (``run_ticks`` is proven bitwise
equal to the scalar path by ``tests/test_run_ticks_equivalence.py``).

The epoch boundary rule. An epoch may extend to the earliest virtual time
at which the dispatcher could possibly have work: the next wallclock-kill
boundary, or the earliest *possible* natural job exit. The latter uses a
sound lower bound: per-tick retirement is at most
``freq * tick / floor_cpi`` where the floor CPI is the solo
memory+branch+assist cost — components the additive CPI model only ever
*raises* under contention (capacities shrink, DRAM latency inflates) —
plus, for noise-free phases only, the solo execution component (issue
sharing can only raise it, and with ``noise == 0`` the lognormal
multiplier is exactly 1). Hence a job with ``R`` instructions left cannot
exit before ``R * floor_cpi / freq`` seconds have passed, and the
dispatcher provably misses no slot-free boundary. With nothing pending,
the whole remaining run is one epoch.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import SimulationError
from repro.sim.core import RateCache, solo_rates
from repro.sim.machine import SimMachine

if TYPE_CHECKING:
    from repro.sim.grid import Grid, NodeSpec
    from repro.sim.process import SimProcess
    from repro.sim.netchaos import NetChaosPlan
    from repro.sim.supervisor import GridFaultPlan, Supervision
    from repro.sim.workload import Workload

ENGINE_NAMES = ("legacy", "serial", "sharded", "supervised", "fleet")

#: Shard transport implementations (see :mod:`repro.sim.transport`).
#: Defined here so the grid can validate without importing the
#: transport layer (which pulls in the serve package) at module load.
TRANSPORT_NAMES = ("inproc", "fork", "socket")


def _entry_list(
    specs: list["NodeSpec"], seed: int, seeds: list[int] | None
) -> list[tuple["NodeSpec", int]]:
    """Per-node (spec, seed) pairs. Explicit ``seeds`` let a fleet
    supervisor keep node ``i``'s global seed ``base + i`` regardless of
    which host group it landed in — the seed assignment, like the
    node-to-worker assignment, must be a pure function of the node's
    global index for engines to stay bitwise-equivalent."""
    if seeds is None:
        return [(spec, seed + index) for index, spec in enumerate(specs)]
    if len(seeds) != len(specs):
        raise SimulationError(
            f"{len(seeds)} seeds for {len(specs)} node specs"
        )
    return list(zip(specs, seeds))


@dataclass(frozen=True)
class SpawnCmd:
    """One dispatch decision, shippable to whichever shard owns the node.

    Attributes:
        job_id: grid job id (the cross-process handle).
        node: target node name.
        command: process command name.
        user: owner.
        workload: what the job runs (pickled to workers).
        wallclock_limit: seconds until the queue's kill fires (None = no
            limit). The shard arms the kill timer relative to the node's
            clock at spawn, exactly like the serial dispatcher.
    """

    job_id: int
    node: str
    command: str
    user: str
    workload: "Workload"
    wallclock_limit: float | None


@dataclass(frozen=True)
class PreemptCmd:
    """Evict one running job from its node (SGE-style preemption).

    The shard kills the job's process *now* — at the epoch boundary where
    the dispatcher decided the eviction — and forgets the job without
    reporting a death: the grid re-queues it, and a later
    :class:`SpawnCmd` restarts the workload from scratch (SGE restart
    semantics). Commands apply in list order, so an eviction always lands
    before the spawn it made room for.
    """

    job_id: int
    node: str


# -- exit lower bounds --------------------------------------------------------

#: (id(arch), id(phase)) -> (floor CPI, keepalive) exact memo; the solo
#: floor CPI is a pure function of the two objects.
_FLOOR_CPI: dict[tuple[int, int], tuple[float, tuple]] = {}


def _floor_cpi(arch, phase) -> float:
    """A sound floor on ``phase``'s per-instruction cycle cost on ``arch``
    in *any* machine state.

    The penalty components (memory+branch+assist) are always a floor:
    contention only shrinks cache capacities and inflates DRAM latency,
    raising the memory component, and branch/assist are contention-free.
    The execution component is priced at zero for noisy phases (the
    lognormal jitter multiplies it and is unbounded below), but for
    deterministic phases (noise == 0) the multiplier is exactly 1 and
    issue sharing can only *raise* exec CPI — so the full solo CPI is the
    floor, making exit bounds near-exact for noise-free jobs.
    """
    key = (id(arch), id(phase))
    hit = _FLOOR_CPI.get(key)
    if hit is not None:
        return hit[0]
    rates = solo_rates(arch, phase)
    value = rates.cpi_memory + rates.cpi_branch + rates.cpi_assist
    if phase.noise == 0:
        value += rates.cpi_exec
    _FLOOR_CPI[key] = (value, (arch, phase))
    return value


def workload_exit_lb(arch, workload: "Workload", retired: float = 0.0) -> float | None:
    """Seconds before which a task ``retired`` instructions into
    ``workload`` cannot possibly exit on ``arch`` (None = never exits)."""
    total = workload.total_instructions
    if math.isinf(total):
        return None
    remaining = max(0.0, total - retired)
    floor_cpi = min(_floor_cpi(arch, p) for p in workload.phases)
    return remaining * floor_cpi / arch.freq_hz


def proc_exit_lb(machine: SimMachine, proc: "SimProcess") -> float | None:
    """Earliest-possible-exit bound for a whole process (None = endless).

    A process dies when its *last* thread does, so the bound is the max
    over live threads of each thread's remaining-work bound.
    """
    worst = 0.0
    for thread in proc.threads:
        if not thread.alive:
            continue
        lb = workload_exit_lb(machine.arch, proc.workload, thread.retired)
        if lb is None:
            return None
        worst = max(worst, lb)
    return worst


# -- snapshots ----------------------------------------------------------------

def node_snapshot(machine: SimMachine) -> dict[str, Any]:
    """Every grid-observable of one node, exactly (for equivalence tests
    and the sharded engine's snapshot message)."""
    procs = {}
    for pid, proc in machine.processes.items():
        procs[pid] = (
            proc.command,
            proc.user,
            proc.alive,
            tuple(
                (
                    t.tid,
                    t.retired,
                    t.cycles,
                    t.cpu_time,
                    t.state.value,
                    t.vruntime,
                    t.context_switches,
                    t.last_pu,
                )
                for t in proc.threads
            ),
        )
    counters = {
        cid: (
            c.value,
            c.time_enabled,
            c.time_running,
            c.samples,
            c._carry,
            c.enabled,
        )
        for cid, c in machine.counters._by_id.items()
    }
    return {
        "now": machine.now,
        "procs": procs,
        "counters": counters,
        "open_counters": machine.counters.open_count(),
        "deaths": dict(machine.death_observed),
        # Scheduler-core state the columnar dispatch path shares with the
        # scalar one: placement memory and multiplex rotation. Safe in
        # conformance digests because every engine is bitwise-equivalent.
        "rotation": dict(machine.counters._rotation),
        "last_assignment": {
            pu: t.tid for pu, t in machine.scheduler._last_assignment.items()
        },
    }


# -- the shard ----------------------------------------------------------------

class Shard:
    """A disjoint set of grid nodes plus their job bookkeeping.

    The same class backs both the in-process serial engine and each worker
    process, which is what guarantees the two execute identical code on
    identical state.
    """

    def __init__(self, entries: list[tuple["NodeSpec", int]], tick: float) -> None:
        self.rate_cache = RateCache()
        self.machines: dict[str, SimMachine] = {}
        for spec, seed in entries:
            self.machines[spec.name] = SimMachine(
                spec.arch,
                sockets=spec.sockets,
                cores_per_socket=spec.cores_per_socket,
                memory_bytes=spec.memory_bytes,
                tick=tick,
                seed=seed,
                rate_cache=self.rate_cache,
            )
        #: job_id -> (node name, pid) for jobs this shard still tracks.
        self._jobs: dict[int, tuple[str, int]] = {}
        self._procs: dict[int, "SimProcess"] = {}
        self._killed: set[int] = set()

    def process_of(self, job_id: int) -> "SimProcess | None":
        """In-process handle of a job's process (serial engine only)."""
        return self._procs.get(job_id)

    def _apply(self, commands: list) -> dict[int, int]:
        spawned: dict[int, int] = {}
        for cmd in commands:
            if isinstance(cmd, PreemptCmd):
                # Eviction: kill now, forget the job (no death report —
                # the grid re-queues it), leave any armed wallclock kill
                # to no-op on the dead process.
                machine = self.machines[cmd.node]
                self._jobs.pop(cmd.job_id, None)
                proc = self._procs.pop(cmd.job_id, None)
                if proc is not None and proc.alive:
                    machine.kill(proc.pid)
                self._killed.discard(cmd.job_id)
                continue
            machine = self.machines[cmd.node]
            proc = machine.spawn(cmd.command, cmd.workload, user=cmd.user)
            self._jobs[cmd.job_id] = (cmd.node, proc.pid)
            self._procs[cmd.job_id] = proc
            spawned[cmd.job_id] = proc.pid
            if cmd.wallclock_limit is not None:
                self._arm_kill(machine, cmd.job_id, proc, cmd.wallclock_limit)
        return spawned

    def _arm_kill(
        self,
        machine: SimMachine,
        job_id: int,
        proc: "SimProcess",
        limit: float,
    ) -> None:
        def kill() -> None:
            if proc.alive:
                machine.kill(proc.pid)
                self._killed.add(job_id)

        machine.at(machine.now + limit, kill)

    def advance(
        self, commands: list, n_ticks: int, frac: float
    ) -> dict[str, Any]:
        """Apply this epoch's spawns/evictions, advance every node,
        report back.

        The reply is the engine protocol's only payload: new pids, exits
        (with the exact machine time the serial reaper would have observed
        them), wallclock kills that fired, refreshed exit lower bounds for
        still-running finite jobs, and cache statistics.
        """
        start_now = {name: m.now for name, m in self.machines.items()}
        t0 = time.perf_counter()
        spawned = self._apply(commands)
        for machine in self.machines.values():
            if n_ticks:
                machine.run_ticks(n_ticks)
            if frac > 1e-12:
                machine.run_for(frac)
        wall = time.perf_counter() - t0

        deaths: dict[int, float] = {}
        killed: list[int] = []
        bounds: dict[int, float] = {}
        done: list[int] = []
        for job_id, (node, pid) in self._jobs.items():
            proc = self._procs[job_id]
            machine = self.machines[node]
            if not proc.alive:
                deaths[job_id] = machine.death_observed.get(pid, machine.now)
                if job_id in self._killed:
                    killed.append(job_id)
                done.append(job_id)
            else:
                lb = proc_exit_lb(machine, proc)
                if lb is not None:
                    # Absolute machine time before which this job cannot
                    # have exited — the grid's next epoch boundary input.
                    bounds[job_id] = machine.now + lb
        for job_id in done:
            del self._jobs[job_id]
            self._killed.discard(job_id)
        return {
            "spawned": spawned,
            "deaths": deaths,
            "killed": killed,
            "bounds": bounds,
            "start_now": start_now,
            "end_now": {name: m.now for name, m in self.machines.items()},
            "wall": wall,
            "cache_hits": self.rate_cache.hits,
            "cache_misses": self.rate_cache.misses,
        }

    def snapshot(self, node: str) -> dict[str, Any]:
        return node_snapshot(self.machines[node])

    def snapshot_many(self, names: list[str]) -> dict[str, dict[str, Any]]:
        """Snapshots for several nodes in one call (one message on the
        sharded engines, instead of a round-trip per node)."""
        return {name: node_snapshot(self.machines[name]) for name in names}


# -- engines ------------------------------------------------------------------

class LegacyTickEngine:
    """The pre-epoch reference: in-process machines, no batching.

    :meth:`Grid.run_for` special-cases this engine and runs the original
    dispatch/advance/reap loop over ``nodes`` — it exists so benchmarks
    and equivalence tests can measure the restructure against the exact
    old semantics.
    """

    name = "legacy"

    def __init__(
        self,
        specs: list["NodeSpec"],
        tick: float,
        seed: int,
        *,
        seeds: list[int] | None = None,
    ) -> None:
        self.nodes: dict[str, SimMachine] = {}
        for spec, node_seed in _entry_list(specs, seed, seeds):
            self.nodes[spec.name] = SimMachine(
                spec.arch,
                sockets=spec.sockets,
                cores_per_socket=spec.cores_per_socket,
                memory_bytes=spec.memory_bytes,
                tick=tick,
                seed=node_seed,
            )

    def snapshot(self, node: str) -> dict[str, Any]:
        return node_snapshot(self.nodes[node])

    def snapshot_many(self, names: list[str]) -> dict[str, dict[str, Any]]:
        return {name: node_snapshot(self.nodes[name]) for name in names}

    def close(self) -> None:
        pass


class SerialEpochEngine:
    """All nodes in one in-process shard, advanced epoch-at-a-time."""

    name = "serial"

    def __init__(
        self,
        specs: list["NodeSpec"],
        tick: float,
        seed: int,
        *,
        seeds: list[int] | None = None,
    ) -> None:
        self.shard = Shard(_entry_list(specs, seed, seeds), tick)
        self.nodes = self.shard.machines

    def advance(
        self, commands: list, n_ticks: int, frac: float
    ) -> list[dict[str, Any]]:
        return [self.shard.advance(commands, n_ticks, frac)]

    def process_of(self, job_id: int) -> "SimProcess | None":
        return self.shard.process_of(job_id)

    def snapshot(self, node: str) -> dict[str, Any]:
        return self.shard.snapshot(node)

    def snapshot_many(self, names: list[str]) -> dict[str, dict[str, Any]]:
        return self.shard.snapshot_many(names)

    def close(self) -> None:
        pass


class ShardedEngine:
    """Persistent worker agents, one disjoint shard of nodes each.

    Node ``i`` of the fleet goes to worker ``i % workers`` — a fixed,
    deterministic assignment, so pid sequences and RNG streams per node
    are independent of the worker count *and* of the transport fabric.
    Machines never cross the process boundary; each epoch costs one
    message round-trip per worker, over whichever
    :class:`~repro.sim.transport.ShardTransport` was requested.
    """

    name = "sharded"

    #: Seconds a worker may take to answer one round-trip (epoch advance,
    #: snapshot, or the ready handshake) before it is declared hung.
    deadline = 60.0

    def __init__(
        self,
        specs: list["NodeSpec"],
        tick: float,
        seed: int,
        workers: int,
        *,
        transport: str = "fork",
        seeds: list[int] | None = None,
    ) -> None:
        from repro.sim.transport import make_transport

        if workers < 1:
            raise SimulationError(f"sharded engine needs >= 1 worker, got {workers}")
        self.workers = min(workers, len(specs))
        self.transport_name = transport
        #: Sharded nodes live in worker agents; direct access would
        #: break the shared-nothing contract, so the mapping stays empty.
        self.nodes: dict[str, SimMachine] = {}
        self._node_worker: dict[str, int] = {}
        self.messages = 0
        self.closed = False
        entry_list = _entry_list(specs, seed, seeds)
        self._transports = []
        for w in range(self.workers):
            entries = []
            for index, entry in enumerate(entry_list):
                if index % self.workers == w:
                    entries.append(entry)
                    self._node_worker[entry[0].name] = w
            self._transports.append(make_transport(transport, w, entries, tick))
        for t in self._transports:
            t.spawn([], 0)
        for w in range(self.workers):
            self._recv(w)  # ready handshake: shard machines are built

    def _recv(self, worker: int) -> Any:
        """One guarded round-trip reply.

        The transport enforces the deadline, liveness and shape rules and
        raises a typed :class:`~repro.errors.WorkerFailure` (never a raw
        ``EOFError`` or an unbounded block). This engine does not recover
        — that is the supervised engine's job — but it fails loudly and
        precisely.
        """
        tag, payload = self._transports[worker].recv(self.deadline)
        if tag != "ok":
            raise SimulationError(f"grid worker failed: {payload}")
        return payload

    def _send(self, worker: int, msg: tuple) -> None:
        self._transports[worker].send(msg)
        self.messages += 1

    def advance(
        self, commands: list, n_ticks: int, frac: float
    ) -> list[dict[str, Any]]:
        by_worker: dict[int, list] = {}
        for cmd in commands:
            by_worker.setdefault(self._node_worker[cmd.node], []).append(cmd)
        # Send to every worker first so shards advance concurrently, then
        # collect: one round-trip per worker per epoch.
        for w in range(self.workers):
            self._send(w, ("advance", by_worker.get(w, []), n_ticks, frac))
        return [self._recv(w) for w in range(self.workers)]

    def process_of(self, job_id: int) -> "SimProcess | None":
        return None

    def snapshot(self, node: str) -> dict[str, Any]:
        if node not in self._node_worker:
            raise SimulationError(f"no node {node!r}")
        return self.snapshot_many([node])[node]

    def snapshot_many(self, names: list[str]) -> dict[str, dict[str, Any]]:
        """Snapshots for several nodes: one message per *worker*, not one
        per node — a whole-fleet refresh is O(workers) round-trips."""
        by_worker: dict[int, list[str]] = {}
        for name in names:
            worker = self._node_worker.get(name)
            if worker is None:
                raise SimulationError(f"no node {name!r}")
            by_worker.setdefault(worker, []).append(name)
        out: dict[str, dict[str, Any]] = {}
        for worker, group in by_worker.items():
            self._send(worker, ("snapshot", group))
            out.update(self._recv(worker))
        return out

    @property
    def bytes_sent(self) -> int:
        return sum(t.bytes_sent for t in self._transports)

    @property
    def bytes_received(self) -> int:
        return sum(t.bytes_received for t in self._transports)

    @property
    def _procs(self) -> list:
        """Live worker process handles (leak tests poke at these)."""
        return [t.proc for t in self._transports if t.proc is not None]

    def close(self) -> None:
        # Mark closed first: a send racing this teardown gets a typed
        # WorkerFailure(kind="closed"), not a BrokenPipeError.
        self.closed = True
        for t in self._transports:
            t.request_close()
        for t in self._transports:
            t.finish_close(grace=5.0)


def create_engine(
    engine: str,
    specs: list["NodeSpec"],
    tick: float,
    seed: int,
    workers: int,
    *,
    chaos: "GridFaultPlan | None" = None,
    supervision: "Supervision | None" = None,
    transport: str | None = None,
    hosts: int | None = None,
    seeds: list[int] | None = None,
    net_chaos: "NetChaosPlan | None" = None,
):
    """Engine factory used by :class:`~repro.sim.grid.Grid`."""
    if chaos is not None and engine not in ("supervised", "fleet"):
        raise SimulationError(
            f"grid chaos requires the supervised engine, not {engine!r}"
        )
    if net_chaos is not None and engine not in ("supervised", "fleet"):
        raise SimulationError(
            f"net chaos requires a supervised engine, not {engine!r} "
            "(an unsupervised engine has no recovery ladder to heal with)"
        )
    if supervision is not None and engine not in ("supervised", "fleet"):
        raise SimulationError(
            f"supervision config requires the supervised engine, not {engine!r}"
        )
    if transport is not None and engine not in ("sharded", "supervised", "fleet"):
        raise SimulationError(
            f"a shard transport requires a sharded engine, not {engine!r}"
        )
    if hosts is not None and engine != "fleet":
        raise SimulationError(
            f"host groups require the fleet engine, not {engine!r}"
        )
    if engine == "legacy":
        return LegacyTickEngine(specs, tick, seed, seeds=seeds)
    if engine == "serial":
        return SerialEpochEngine(specs, tick, seed, seeds=seeds)
    if engine == "sharded":
        return ShardedEngine(
            specs, tick, seed, workers,
            transport=transport or "fork", seeds=seeds,
        )
    if engine == "supervised":
        return _make_supervised(
            specs, tick, seed, workers,
            chaos=chaos, supervision=supervision,
            transport=transport or "fork", seeds=seeds,
            net_chaos=net_chaos,
        )
    if engine == "fleet":
        from repro.sim.fleet import FleetEngine

        return FleetEngine(
            specs, tick, seed, workers,
            hosts=hosts if hosts is not None else 2,
            transport=transport or "fork",
            chaos=chaos, config=supervision, seeds=seeds,
            netchaos=net_chaos,
        )
    raise SimulationError(
        f"unknown grid engine {engine!r} (have: {', '.join(ENGINE_NAMES)})"
    )


def _make_supervised(
    specs, tick, seed, workers, *, chaos, supervision, transport, seeds,
    net_chaos=None,
):
    from repro.sim.supervisor import SupervisedShardedEngine

    return SupervisedShardedEngine(
        specs, tick, seed, workers,
        chaos=chaos, config=supervision, transport=transport, seeds=seeds,
        netchaos=net_chaos,
    )
