"""Real syscall backend: graceful degradation without a PMU.

The container's kernel exposes no PMU (perf_event_open -> ENOENT), which is
itself part of what we must handle faithfully: the probe reports False and
opens raise PerfNotSupportedError. Structural tests (attr construction,
errno mapping) run everywhere; behavioural tests auto-skip when a PMU is
present (they would then legitimately succeed).
"""

import errno

import pytest

from repro.errors import (
    NoSuchTaskError,
    PerfError,
    PerfNotSupportedError,
    PerfPermissionError,
)
from repro.perf import abi
from repro.perf.events import resolve_event
from repro.perf.syscall import (
    RealBackend,
    kernel_supports_perf_events,
    paranoid_level,
    perf_event_open,
)


class TestProbe:
    def test_probe_returns_bool(self):
        assert isinstance(kernel_supports_perf_events(), bool)

    def test_paranoid_level_readable_or_none(self):
        level = paranoid_level()
        assert level is None or isinstance(level, int)


@pytest.mark.skipif(
    kernel_supports_perf_events(), reason="host has a PMU; ENOENT path untestable"
)
class TestNoPmuPath:
    def test_open_raises_not_supported(self):
        attr = abi.counting_attr(
            abi.PerfTypeId.HARDWARE, int(abi.HardwareEventId.INSTRUCTIONS)
        )
        with pytest.raises(PerfNotSupportedError):
            perf_event_open(attr, pid=0)

    def test_backend_open_raises(self):
        backend = RealBackend()
        with pytest.raises(PerfError):
            backend.open(resolve_event("cycles"), 0)


@pytest.mark.skipif(
    not kernel_supports_perf_events(), reason="no PMU on this kernel"
)
class TestWithPmu:
    def test_self_monitoring_counts(self):
        backend = RealBackend()
        handle = backend.open(resolve_event("instructions"), 0)
        try:
            x = 0
            for i in range(100000):
                x += i
            reading = backend.read(handle)
            assert reading.value > 0
        finally:
            backend.close(handle)


class TestErrnoMapping:
    """Errno -> exception mapping, via a monkeypatched syscall."""

    def _patch(self, monkeypatch, err):
        import ctypes

        class FakeLibc:
            def syscall(self, *args):
                ctypes.set_errno(err)
                return -1

        monkeypatch.setattr("repro.perf.syscall._get_libc", lambda: FakeLibc())

    def _open(self):
        attr = abi.counting_attr(abi.PerfTypeId.HARDWARE, 0)
        return perf_event_open(attr, pid=1)

    def test_enoent(self, monkeypatch):
        self._patch(monkeypatch, errno.ENOENT)
        with pytest.raises(PerfNotSupportedError):
            self._open()

    def test_eperm(self, monkeypatch):
        self._patch(monkeypatch, errno.EPERM)
        with pytest.raises(PerfPermissionError):
            self._open()

    def test_esrch(self, monkeypatch):
        self._patch(monkeypatch, errno.ESRCH)
        with pytest.raises(NoSuchTaskError):
            self._open()

    def test_einval(self, monkeypatch):
        self._patch(monkeypatch, errno.EINVAL)
        with pytest.raises(PerfError):
            self._open()
