"""Property-based invariants of the grid dispatcher."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.grid import Grid, NodeSpec
from repro.sim.workloads import datacenter

_GB = 1024**3

_submissions = st.lists(
    st.tuples(
        st.sampled_from(
            ["short-2g-asap", "short-2g-overnight", "day-8g-asap",
             "long-2g-overnight"]
        ),
        st.floats(min_value=5.0, max_value=80.0),   # duration
        st.integers(min_value=1, max_value=2),       # memory GB
    ),
    min_size=1,
    max_size=30,
)


@given(_submissions, st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_grid_never_violates_admission(subs, seed):
    """At every step: running jobs <= logical cores per node and committed
    memory <= physical memory, for arbitrary submission patterns."""
    fleet = [
        NodeSpec(name="a", sockets=1, cores_per_socket=2,
                 memory_bytes=4 * _GB),
        NodeSpec(name="b", sockets=1, cores_per_socket=1,
                 memory_bytes=2 * _GB),
    ]
    grid = Grid(fleet, tick=1.0, seed=seed)
    wl = datacenter.compute_job("j", 1.2, duration_hint=30.0)
    for queue, duration, memory_gb in subs:
        grid.submit(
            "j",
            datacenter.compute_job("j", 1.2, duration_hint=duration),
            queue=queue,
            memory_bytes=memory_gb * _GB,
        )
    for _ in range(12):
        grid.run_for(5.0)
        for spec in fleet:
            running, committed = grid._node_load(spec.name)
            assert running <= grid.nodes[spec.name].topology.n_pus
            assert committed <= spec.memory_bytes


@given(_submissions)
@settings(max_examples=15, deadline=None)
def test_grid_conserves_jobs(subs):
    """Every submission is always exactly one of pending/running/done."""
    grid = Grid(
        [NodeSpec(name="n", sockets=1, cores_per_socket=2)], tick=1.0
    )
    for queue, duration, memory_gb in subs:
        grid.submit(
            "j",
            datacenter.compute_job("j", 1.2, duration_hint=duration),
            queue=queue,
            memory_bytes=memory_gb * _GB,
        )
    grid.run_for(40.0)
    states = [j.state for j in grid.jobs()]
    assert len(states) == len(subs)
    assert all(s in ("pending", "running", "done") for s in states)
    # Nothing pending while a compatible slot sits idle.
    running, _ = grid._node_load("n")
    if running < grid.nodes["n"].topology.n_pus:
        dispatchable = [
            j for j in grid.jobs("pending")
            if not grid.queues[j.queue].dedicated_only
            and j.memory_bytes + grid._node_load("n")[1]
            <= 24 * _GB
        ]
        # Memory may still block them; only assert when memory clearly fits.
        for j in dispatchable:
            committed = grid._node_load("n")[1]
            if committed + j.memory_bytes <= 24 * _GB:
                # run one dispatch round and verify progress is possible
                grid.run_for(1.0)
                break
