"""Figure 9: IPC produced by different compilers (GCC 4.4.3 vs icc 11.0).

Paper panels (SPEC INT/FP on the Nehalem workstation):
(a) 456.hmmer   — icc's IPC is clearly higher and icc finishes first.
(b) 482.sphinx3 — gcc's IPC is higher, yet icc finishes first
                  (lower IPC wins: fewer instructions).
(c) 464.h264ref — an *inversion*: gcc leads during the first (short)
                  phase, trails during the second; total times are close.
                  Invisible in Jayaseelan et al.'s aggregated totals.
(d) 433.milc    — both executables run at exactly the same speed even
                  though gcc's IPC is constantly higher.
"""

import numpy as np
import pytest
from _harness import ipc_series, monitor_workload, once, save_artifact

from repro.sim import NEHALEM
from repro.sim.workloads import spec


def _trace(bench: str, compiler: str):
    recorder, proc = monitor_workload(
        NEHALEM,
        spec.workload(bench, compiler),
        delay=5.0,
        tick=2.5,
        seed=23,
        command=f"{bench}-{compiler}",
    )
    return ipc_series(recorder, proc, f"{bench} {compiler} IPC")


def _both(bench: str):
    return {c: _trace(bench, c) for c in ("gcc", "icc")}


def _save(bench, traces):
    art = "\n\n".join(traces[c].ascii_plot() for c in ("gcc", "icc"))
    save_artifact(f"fig09_{bench.replace('.', '_')}", art)


def test_fig09a_hmmer_higher_ipc_wins(benchmark):
    traces = once(benchmark, lambda: _both("456.hmmer"))
    _save("456.hmmer", traces)
    gcc, icc = traces["gcc"], traces["icc"]
    assert icc.mean() > 1.15 * gcc.mean()       # clearly higher IPC
    assert icc.x[-1] < 0.9 * gcc.x[-1]          # and a faster run


def test_fig09b_sphinx3_lower_ipc_wins(benchmark):
    traces = once(benchmark, lambda: _both("482.sphinx3"))
    _save("482.sphinx3", traces)
    gcc, icc = traces["gcc"], traces["icc"]
    assert gcc.mean() > 1.1 * icc.mean()        # gcc's IPC higher...
    assert icc.x[-1] < 0.95 * gcc.x[-1]         # ...but icc finishes first


def test_fig09c_h264ref_inversion(benchmark):
    traces = once(benchmark, lambda: _both("464.h264ref"))
    _save("464.h264ref", traces)
    gcc, icc = traces["gcc"], traces["icc"]
    # Phase 1 is the first ~25 % of each run; phase 2 the rest.
    cut_g, cut_i = int(0.2 * len(gcc)), int(0.2 * len(icc))
    assert np.mean(gcc.y[:cut_g]) > np.mean(icc.y[:cut_i]) + 0.2   # gcc leads
    assert np.mean(gcc.y[-cut_g:]) < np.mean(icc.y[-cut_i:]) - 0.1  # then trails
    # Total run times are close.
    assert gcc.x[-1] == pytest.approx(icc.x[-1], rel=0.1)


def test_fig09d_milc_same_speed(benchmark):
    traces = once(benchmark, lambda: _both("433.milc"))
    _save("433.milc", traces)
    gcc, icc = traces["gcc"], traces["icc"]
    # Same wall time (within a sampling quantum)...
    assert gcc.x[-1] == pytest.approx(icc.x[-1], rel=0.03)
    # ...with gcc's IPC constantly higher.
    n = min(len(gcc), len(icc)) - 1
    assert np.all(gcc.y[:n] > icc.y[:n])
