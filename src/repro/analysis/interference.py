"""Co-run interference quantification (§3.4, Figs. 10-11).

The paper's observation: CPU usage stays >99.3 % while IPC quietly drops
when neighbours arrive. These helpers turn two recorded IPC series (solo
window, co-run window) into the slowdown numbers the paper quotes — without
any contention generator, "observing the behaviour in its real context".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.timeseries import MetricSeries
from repro.errors import ReproError


@dataclass(frozen=True)
class SlowdownReport:
    """Solo-vs-corun comparison for one victim task."""

    solo_mean: float
    corun_mean: float

    @property
    def slowdown(self) -> float:
        """Fractional IPC loss (0.2 == the paper's '20 % slowdown')."""
        if self.solo_mean <= 0:
            return 0.0
        return 1.0 - self.corun_mean / self.solo_mean

    @property
    def factor(self) -> float:
        """Solo/corun ratio (2.0 == the paper's '2x slowdown')."""
        if self.corun_mean <= 0:
            return float("inf")
        return self.solo_mean / self.corun_mean


def frame_slowdown(
    frames,
    pid: int,
    header: str,
    solo: tuple[float, float],
    corun: tuple[float, float],
) -> SlowdownReport:
    """Slowdown of one task's metric straight from SnapshotFrames.

    Builds the victim's series columnar-side (no per-sample loop) and
    compares the two windows like :func:`corun_slowdown`.
    """
    series = MetricSeries.from_frames(frames, pid, header)
    return corun_slowdown(series, solo, corun)


def corun_slowdown(
    series: MetricSeries, solo: tuple[float, float], corun: tuple[float, float]
) -> SlowdownReport:
    """Compare a victim's metric between a solo window and a co-run window.

    Args:
        series: the victim's IPC (or other metric) over time.
        solo: (lo, hi) x-range of the baseline window.
        corun: (lo, hi) x-range of the contended window.

    Raises:
        ReproError: when either window contains no samples.
    """
    s = series.window(*solo)
    c = series.window(*corun)
    if len(s) == 0 or len(c) == 0:
        raise ReproError(
            f"empty comparison window (solo has {len(s)}, corun has {len(c)})"
        )
    return SlowdownReport(solo_mean=s.mean(), corun_mean=c.mean())


def overlap_window(
    arrivals: list[float], departures: list[float]
) -> tuple[float, float] | None:
    """The time window during which *all* the given neighbours were present.

    Args:
        arrivals: neighbour start times.
        departures: neighbour end times (same length).

    Returns:
        (latest arrival, earliest departure), or None if they never all
        overlap.
    """
    if len(arrivals) != len(departures):
        raise ReproError("arrivals and departures must pair up")
    if not arrivals:
        return None
    lo = max(arrivals)
    hi = min(departures)
    return (lo, hi) if hi > lo else None


def sensitivity_matrix(
    victims: dict[str, MetricSeries],
    solo: tuple[float, float],
    corun: tuple[float, float],
) -> dict[str, float]:
    """Slowdown per victim, for reporting tables.

    NaN-mean windows yield 0.0 slowdown rather than raising, so one idle
    victim doesn't break a whole report.
    """
    out = {}
    for name, series in victims.items():
        try:
            out[name] = corun_slowdown(series, solo, corun).slowdown
        except ReproError:
            out[name] = 0.0
    if any(np.isnan(v) for v in out.values()):
        out = {k: (0.0 if np.isnan(v) else v) for k, v in out.items()}
    return out
