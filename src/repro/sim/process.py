"""Simulated processes and threads.

A :class:`SimProcess` owns one or more :class:`SimThread` objects; each
thread executes the process's :class:`~repro.sim.workload.Workload`
independently (its own retired-instruction cursor). The fields mirror what
tiptop reads from ``/proc``: pid/tid, owner, command name, state, CPU times,
the processor a task last ran on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.sim.workload import Phase, Workload


class TaskState(enum.Enum):
    """Scheduler-visible task states (a subset of Linux's)."""

    RUNNABLE = "R"
    SLEEPING = "S"
    DEAD = "X"


@dataclass(eq=False, slots=True)
class SimThread:
    """One schedulable hardware-thread of work.

    Slotted: a thousand-task node keeps a thousand of these alive for the
    whole run, and the columnar kernel touches them on every dispatch, so
    the dict-free layout pays in both peak RSS and access latency.

    Attributes:
        tid: thread id (equals the pid for single-threaded processes).
        process: owning process.
        retired: instructions retired since thread start.
        cycles: core cycles consumed while scheduled.
        state: RUNNABLE/SLEEPING/DEAD.
        cpu_time: seconds of CPU consumed (utime+stime equivalent).
        last_pu: PU the thread last ran on (-1 before first dispatch).
        vruntime: scheduler fairness clock (CFS-like).
        context_switches: number of times the thread was switched in.
    """

    tid: int
    process: "SimProcess"
    retired: float = 0.0
    cycles: float = 0.0
    state: TaskState = TaskState.RUNNABLE
    cpu_time: float = 0.0
    last_pu: int = -1
    vruntime: float = 0.0
    context_switches: int = 0
    duty_rng: np.random.Generator | None = None
    #: (retired, locate result) memo — ``locate`` is pure in ``retired``.
    _located: tuple | None = field(default=None, repr=False)

    def current_phase(self) -> tuple[Phase, float] | None:
        """Active phase and remaining budget, or None when finished.

        Memoised per ``retired`` cursor position: between retirement steps
        the workload lookup is pure, and an idle thread is asked for its
        phase on every tick it is considered for dispatch.
        """
        cached = self._located
        retired = self.retired
        if cached is not None and cached[0] == retired:
            return cached[1]
        located = self.process.workload.locate(retired)
        self._located = (retired, located)
        return located

    @property
    def alive(self) -> bool:
        """True until the thread's workload completes."""
        return self.state is not TaskState.DEAD

    def mark_dead(self) -> None:
        """Terminate the thread."""
        self.state = TaskState.DEAD


@dataclass(eq=False, slots=True)
class SimProcess:
    """A simulated process: identity plus workload.

    Attributes:
        pid: process id.
        uid: numeric owner id.
        user: owner's login name (tiptop's USER column).
        command: executable name (tiptop's COMMAND column).
        workload: the behavioural program every thread executes.
        affinity: PU ids this process may run on (None = all; the paper's
            §3.4 uses ``taskset`` to pin mcf copies to chosen cores).
        nice: scheduling weight bias (positive = lower priority).
        duty_cycle: fraction of time the process is runnable (1.0 = pure
            CPU burner; < 1 models I/O or lock waits, producing the paper's
            sub-100 %CPU rows like process11 at 43.7 % in Fig. 1).
        start_time: virtual time the process was spawned.
        threads: the schedulable threads.
        rng: per-process deterministic noise source.
    """

    pid: int
    uid: int
    user: str
    command: str
    workload: Workload
    affinity: frozenset[int] | None = None
    nice: int = 0
    duty_cycle: float = 1.0
    start_time: float = 0.0
    threads: list[SimThread] = field(default_factory=list)
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0)
    )

    def spawn_threads(self, count: int, first_tid: int) -> None:
        """Create ``count`` threads with ids starting at ``first_tid``.

        The first thread of a process conventionally has ``tid == pid``.
        """
        if count < 1:
            raise SimulationError(f"process {self.pid} needs >= 1 thread")
        if self.threads:
            raise SimulationError(f"process {self.pid} already has threads")
        for i in range(count):
            self.threads.append(SimThread(tid=first_tid + i, process=self))

    @property
    def alive(self) -> bool:
        """True while any thread is alive."""
        return any(t.alive for t in self.threads)

    @property
    def state(self) -> TaskState:
        """Aggregate state: runnable if any thread is."""
        states = {t.state for t in self.threads}
        if TaskState.RUNNABLE in states:
            return TaskState.RUNNABLE
        if TaskState.SLEEPING in states:
            return TaskState.SLEEPING
        return TaskState.DEAD

    @property
    def retired(self) -> float:
        """Total instructions retired by all threads."""
        return sum(t.retired for t in self.threads)

    @property
    def cpu_time(self) -> float:
        """Total CPU seconds across threads."""
        return sum(t.cpu_time for t in self.threads)

    def thread(self, tid: int) -> SimThread:
        """Look up a thread by tid.

        Raises:
            SimulationError: when the tid is not part of this process.
        """
        for t in self.threads:
            if t.tid == tid:
                return t
        raise SimulationError(f"process {self.pid} has no thread {tid}")
