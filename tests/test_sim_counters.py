"""Kernel counter table: accrual, enabled/running time, multiplexing."""

import pytest

from repro.errors import CounterStateError
from repro.sim.counters import CounterTable
from repro.sim.events import Event


@pytest.fixture
def table():
    return CounterTable(pmu_width=4)


class TestOpenClose:
    def test_open_returns_distinct_handles(self, table):
        a = table.open(Event.CYCLES, 1, 0)
        b = table.open(Event.INSTRUCTIONS, 1, 0)
        assert a.counter_id != b.counter_id
        assert table.open_count() == 2

    def test_get_unknown_raises(self, table):
        with pytest.raises(CounterStateError):
            table.get(12345)

    def test_close_releases(self, table):
        c = table.open(Event.CYCLES, 1, 0)
        table.close(c.counter_id)
        assert table.open_count() == 0
        with pytest.raises(CounterStateError):
            table.get(c.counter_id)

    def test_read_closed_raises(self, table):
        c = table.open(Event.CYCLES, 1, 0)
        table.close(c.counter_id)
        with pytest.raises(CounterStateError):
            c.reading()

    def test_bad_width(self):
        with pytest.raises(CounterStateError):
            CounterTable(0)


class TestAccrual:
    def test_scheduled_accrues_value_and_times(self, table):
        c = table.open(Event.CYCLES, 1, 0)
        table.accrue(1, {Event.CYCLES: 100.0}, wall_dt=1.0, scheduled_dt=1.0, alive=True)
        value, enabled, running = c.reading()
        assert value == 100
        assert enabled == 1.0
        assert running == 1.0

    def test_unscheduled_advances_enabled_only(self, table):
        c = table.open(Event.CYCLES, 1, 0)
        table.accrue(1, {}, wall_dt=1.0, scheduled_dt=0.0, alive=True)
        value, enabled, running = c.reading()
        assert value == 0
        assert enabled == 1.0
        assert running == 0.0

    def test_disabled_counter_frozen(self, table):
        c = table.open(Event.CYCLES, 1, 0)
        c.enabled = False
        table.accrue(1, {Event.CYCLES: 50.0}, wall_dt=1.0, scheduled_dt=1.0, alive=True)
        assert c.reading() == (0, 0.0, 0.0)

    def test_dead_task_frozen(self, table):
        c = table.open(Event.CYCLES, 1, 0)
        table.accrue(1, {Event.CYCLES: 50.0}, wall_dt=1.0, scheduled_dt=1.0, alive=False)
        assert c.reading() == (0, 0.0, 0.0)

    def test_accrue_unmonitored_tid_is_noop(self, table):
        table.accrue(999, {Event.CYCLES: 1.0}, wall_dt=1.0, scheduled_dt=1.0, alive=True)

    def test_only_matching_event_accrues(self, table):
        c = table.open(Event.CYCLES, 1, 0)
        i = table.open(Event.INSTRUCTIONS, 1, 0)
        table.accrue(
            1,
            {Event.CYCLES: 10.0, Event.INSTRUCTIONS: 30.0},
            wall_dt=1.0,
            scheduled_dt=1.0,
            alive=True,
        )
        assert c.reading()[0] == 10
        assert i.reading()[0] == 30


class TestMultiplexing:
    def test_within_width_all_run(self, table):
        counters = [
            table.open(e, 1, 0)
            for e in (Event.CYCLES, Event.INSTRUCTIONS, Event.CACHE_MISSES)
        ]
        table.accrue(1, {e.event: 1.0 for e in counters}, wall_dt=1.0,
                     scheduled_dt=1.0, alive=True)
        for c in counters:
            assert c.reading()[2] == 1.0  # time_running == scheduled

    def test_over_width_rotates(self, table):
        events = [
            Event.CYCLES,
            Event.INSTRUCTIONS,
            Event.CACHE_MISSES,
            Event.CACHE_REFERENCES,
            Event.BRANCH_MISSES,
            Event.BRANCH_INSTRUCTIONS,
        ]
        counters = [table.open(e, 1, 0) for e in events]
        ticks = 60
        for _ in range(ticks):
            table.accrue(1, {e: 1.0 for e in events}, wall_dt=1.0,
                         scheduled_dt=1.0, alive=True)
        for c in counters:
            value, enabled, running = c.reading()
            assert enabled == ticks
            assert running < ticks  # multiplexed off part of the time
            # Scaling recovers the true count within rotation granularity.
            scaled = value * enabled / running
            assert scaled == pytest.approx(ticks, rel=0.1)

    def test_rotation_is_fair(self, table):
        events = [
            Event.CYCLES,
            Event.INSTRUCTIONS,
            Event.CACHE_MISSES,
            Event.CACHE_REFERENCES,
            Event.BRANCH_MISSES,
            Event.BRANCH_INSTRUCTIONS,
            Event.BUS_CYCLES,
            Event.LOADS,
        ]
        counters = [table.open(e, 1, 0) for e in events]
        for _ in range(80):
            table.accrue(1, {e: 1.0 for e in events}, wall_dt=1.0,
                         scheduled_dt=1.0, alive=True)
        runnings = [c.reading()[2] for c in counters]
        assert max(runnings) - min(runnings) <= 2.0


class TestAdvanceIdle:
    """Batch idle folding must replay per-tick idle accruals exactly."""

    def test_matches_repeated_idle_accrue(self, table):
        batched = [table.open(e, 1, 0) for e in (Event.CYCLES, Event.LOADS)]
        stepped = [table.open(e, 2, 0) for e in (Event.CYCLES, Event.LOADS)]
        dt, ticks = 0.1, 137
        table.advance_idle(1, dt, ticks)
        for _ in range(ticks):
            table.accrue(2, {}, wall_dt=dt, scheduled_dt=0.0, alive=True)
        for b, s in zip(batched, stepped):
            assert b.reading() == s.reading()
            assert b.time_enabled == s.time_enabled  # bitwise, not approx

    def test_mixed_start_clocks_fold_independently(self, table):
        early = table.open(Event.CYCLES, 1, 0)
        table.advance_idle(1, 0.1, 3)  # early is now 3 ticks ahead
        late = table.open(Event.INSTRUCTIONS, 1, 0)
        table.advance_idle(1, 0.1, 7)
        reference = 0.0
        for _ in range(3):
            reference += 0.1
        late_ref, early_ref = 0.0, reference
        for _ in range(7):
            early_ref += 0.1
            late_ref += 0.1
        assert early.time_enabled == early_ref
        assert late.time_enabled == late_ref

    def test_disabled_counters_untouched(self, table):
        on = table.open(Event.CYCLES, 1, 0)
        off = table.open(Event.INSTRUCTIONS, 1, 0)
        off.enabled = False
        table.advance_idle(1, 0.25, 10)
        assert on.time_enabled == pytest.approx(2.5)
        assert off.time_enabled == 0.0
        assert off.time_running == 0.0

    def test_rotation_advances_once_per_tick(self, table):
        events = [
            Event.CYCLES,
            Event.INSTRUCTIONS,
            Event.CACHE_MISSES,
            Event.CACHE_REFERENCES,
            Event.BRANCH_MISSES,
        ]
        for e in events:
            table.open(e, 1, 0)
        assert len(events) > table.pmu_width
        table.advance_idle(1, 0.1, 9)
        assert table._rotation[1] == 9

    def test_zero_ticks_or_unmonitored_tid_is_noop(self, table):
        c = table.open(Event.CYCLES, 1, 0)
        table.advance_idle(1, 0.1, 0)
        table.advance_idle(999, 0.1, 5)
        assert c.time_enabled == 0.0


class TestCounterColumns:
    """Slot allocator behind the table: grow, recycle, detach-on-close."""

    def test_slots_recycle_after_close(self, table):
        a = table.open(Event.CYCLES, 1, 0)
        slot = a._slot
        table.close(a.counter_id)
        b = table.open(Event.LOADS, 2, 0)
        assert b._slot == slot  # freed slot reused
        assert b.value == 0.0 and b.time_enabled == 0.0

    def test_closed_counter_keeps_final_state_despite_recycling(self, table):
        a = table.open(Event.CYCLES, 1, 0)
        table.accrue(1, {Event.CYCLES: 42.0}, wall_dt=1.0, scheduled_dt=1.0,
                     alive=True)
        table.close(a.counter_id)
        b = table.open(Event.LOADS, 2, 0)  # recycles a's slot
        table.accrue(2, {Event.LOADS: 7.0}, wall_dt=0.5, scheduled_dt=0.5,
                     alive=True)
        # The detached handle still exposes its final values; reading()
        # raises (closed), but the columns behind it are private now.
        assert a.value == 42.0
        assert a.time_enabled == 1.0
        assert b.value == 7.0

    def test_capacity_grows_geometrically(self, table):
        start = table.columns.capacity
        opened = [table.open(Event.CYCLES, i, 0) for i in range(start + 1)]
        assert table.columns.capacity == start * 2
        assert table.columns.live_slots() == start + 1
        for c in opened:
            table.close(c.counter_id)
        assert table.columns.live_slots() == 0

    def test_version_moves_on_population_and_enable_changes(self, table):
        v0 = table.columns.version
        c = table.open(Event.CYCLES, 1, 0)
        assert table.columns.version > v0
        v1 = table.columns.version
        c.enabled = False
        assert table.columns.version > v1
        v2 = table.columns.version
        c.enabled = False  # no-op toggle must not thrash the caches
        assert table.columns.version == v2

    def test_double_free_rejected(self, table):
        from repro.errors import SimulationError
        from repro.sim.columns import CounterColumns

        cols = CounterColumns(capacity=2)
        slot = cols.alloc()
        cols.free(slot)
        with pytest.raises(SimulationError):
            cols.free(slot)
