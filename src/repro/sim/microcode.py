"""Micro-code floating-point assist model.

On the paper's Nehalem, FP operations on non-finite (Inf/NaN) or denormal
operands are "assisted in micro-code … extremely slow compared to regular FP
execution" (§3.1, quoting the Intel optimisation manual). The x87 pipeline
takes the assist on every such operation; SSE scalar code with default MXCSR
flush-to-zero semantics in the paper's experiment did *not* take assists
(Table 1: SSE IPC unchanged at 1.33). The PowerPC 970 handles non-finite
values in hardware and has no assist mechanism at all (Fig. 3d).

The model: an architecture exposes ``fp_assist_penalty`` (cycles of
micro-code per assisted instruction, None when absent); a phase exposes the
fraction of FP operations with assist-eligible operands and which FP ISA the
code uses. This module turns those into assists-per-instruction and the CPI
tax — which is what the FP_ASSIST counter and the paper's ``%FP_assist``
column report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.arch import ArchModel
from repro.sim.isa import InstructionMix, OperandProfile

#: Extra micro-ops issued per assisted instruction (drives UOPS_EXECUTED;
#: the Intel manuals put assists in the hundreds-of-uops range).
ASSIST_UOPS = 180.0


@dataclass(frozen=True)
class AssistOutcome:
    """Assist rates for one phase on one architecture.

    Attributes:
        assists_per_instruction: assisted FP instructions per retired
            instruction (``x100`` gives the paper's %FP_assist column).
        cpi_tax: cycles per instruction added by assist micro-code.
        extra_uops_per_instruction: additional micro-ops per instruction.
    """

    assists_per_instruction: float
    cpi_tax: float
    extra_uops_per_instruction: float


def assist_outcome(
    arch: ArchModel, mix: InstructionMix, operands: OperandProfile
) -> AssistOutcome:
    """Compute FP-assist rates for ``mix``/``operands`` on ``arch``.

    Only x87 FP instructions are assist-eligible in this model (matching the
    paper's Table 1, where the SSE build of the same loop shows zero
    assists); architectures without the mechanism return all-zero rates.
    """
    if not arch.has_fp_assist:
        return AssistOutcome(0.0, 0.0, 0.0)
    eligible = mix.x87_ops * operands.assist_eligible
    if eligible <= 0:
        return AssistOutcome(0.0, 0.0, 0.0)
    penalty = arch.fp_assist_penalty or 0.0
    return AssistOutcome(
        assists_per_instruction=eligible,
        cpi_tax=eligible * penalty,
        extra_uops_per_instruction=eligible * ASSIST_UOPS,
    )
