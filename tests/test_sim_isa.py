"""Instruction mixes and operand profiles."""

import pytest

from repro.errors import WorkloadError
from repro.sim.isa import (
    FINITE_OPERANDS,
    InstructionClass,
    InstructionMix,
    OperandProfile,
)


class TestInstructionMix:
    def test_of_builds_and_sums(self):
        mix = InstructionMix.of(int_alu=0.5, load=0.3, branch=0.2)
        assert mix.fraction(InstructionClass.INT_ALU) == 0.5
        assert mix.loads == 0.3
        assert mix.branches == 0.2

    def test_must_sum_to_one(self):
        with pytest.raises(WorkloadError):
            InstructionMix.of(int_alu=0.5, load=0.3)

    def test_negative_fraction_rejected(self):
        with pytest.raises(WorkloadError):
            InstructionMix.of(int_alu=1.2, load=-0.2)

    def test_unknown_class_rejected(self):
        with pytest.raises(WorkloadError):
            InstructionMix.of(quantum_ops=1.0)

    def test_mem_refs(self):
        mix = InstructionMix.of(int_alu=0.5, load=0.3, store=0.2)
        assert mix.mem_refs == pytest.approx(0.5)

    def test_fp_split(self):
        mix = InstructionMix.of(int_alu=0.5, fp_x87=0.2, fp_sse=0.3)
        assert mix.fp_ops == pytest.approx(0.5)
        assert mix.x87_ops == pytest.approx(0.2)
        assert mix.sse_ops == pytest.approx(0.3)

    def test_missing_class_is_zero(self):
        mix = InstructionMix.of(int_alu=1.0)
        assert mix.branches == 0.0

    def test_blend(self):
        a = InstructionMix.of(int_alu=1.0)
        b = InstructionMix.of(load=1.0)
        mid = a.scaled_toward(b, 0.25)
        assert mid.fraction(InstructionClass.INT_ALU) == pytest.approx(0.75)
        assert mid.loads == pytest.approx(0.25)

    def test_blend_weight_bounds(self):
        a = InstructionMix.of(int_alu=1.0)
        with pytest.raises(WorkloadError):
            a.scaled_toward(a, 1.5)


class TestOperandProfile:
    def test_finite_default(self):
        assert FINITE_OPERANDS.assist_eligible == 0.0

    def test_nonfinite_fraction(self):
        p = OperandProfile(nonfinite=0.4, denormal=0.1)
        assert p.assist_eligible == pytest.approx(0.5)

    def test_bounds(self):
        with pytest.raises(WorkloadError):
            OperandProfile(nonfinite=1.5)
        with pytest.raises(WorkloadError):
            OperandProfile(nonfinite=0.7, denormal=0.7)
