"""Pin-like instrumentation substrate."""

import math

import pytest

from repro.errors import WorkloadError
from repro.pin.inscount import PIN_SLOWDOWN, inscount, native_run_time
from repro.sim import NEHALEM
from repro.sim.workloads import spec


class TestNativeRunTime:
    def test_matches_machine_execution(self, basic_workload, coarse_machine):
        predicted = native_run_time(NEHALEM, basic_workload)
        p = coarse_machine.spawn("j", basic_workload)
        coarse_machine.run_for(predicted * 2)
        assert not p.alive
        assert p.cpu_time == pytest.approx(predicted, rel=0.1)

    def test_endless_rejected(self, endless_workload):
        with pytest.raises(WorkloadError):
            native_run_time(NEHALEM, endless_workload)


class TestInscount:
    def test_count_close_to_exact(self, basic_workload):
        run = inscount(NEHALEM, basic_workload)
        exact = basic_workload.total_instructions
        assert run.instructions == pytest.approx(exact, rel=5e-3)
        assert run.instructions != exact  # instrumentation sees a residual

    def test_deterministic(self, basic_workload):
        a = inscount(NEHALEM, basic_workload)
        b = inscount(NEHALEM, basic_workload)
        assert a.instructions == b.instructions

    def test_slowdown_applied(self, basic_workload):
        run = inscount(NEHALEM, basic_workload)
        assert run.slowdown == pytest.approx(PIN_SLOWDOWN)
        assert run.wall_time == pytest.approx(run.native_time * PIN_SLOWDOWN)

    def test_custom_slowdown(self, basic_workload):
        run = inscount(NEHALEM, basic_workload, slowdown=2.0)
        assert run.slowdown == pytest.approx(2.0)

    def test_bad_slowdown(self, basic_workload):
        with pytest.raises(WorkloadError):
            inscount(NEHALEM, basic_workload, slowdown=0)

    def test_suite_mean_error_near_paper(self):
        """Over the SPEC models, mean |error| lands near the 0.06 % of §2.4."""
        errors = []
        for name in spec.available():
            w = spec.workload(name)
            run = inscount(NEHALEM, w)
            errors.append(abs(run.instructions - w.total_instructions) / w.total_instructions)
        mean = sum(errors) / len(errors)
        assert 1e-4 < mean < 2e-3  # same order as 6e-4
