"""Entry point for ``python -m repro.verify``."""

import sys

from repro.verify.cli import main

if __name__ == "__main__":
    sys.exit(main())
