"""CFS-like OS scheduler for the simulated machine.

Implements the behaviours the paper's experiments depend on:

* **Fairness** — runnable threads are dispatched by lowest virtual runtime,
  so over-subscribed nodes time-share and ``%CPU`` drops below 100 %
  (process11 in Fig. 1 shows 43.7 %).
* **Core spreading** — like Linux, an idle physical core is preferred over
  the SMT sibling of a busy one, so up to N jobs on an N-core machine each
  get a core to themselves (Figs. 10, 11a).
* **Affinity** — ``taskset``-style pinning restricts a process to chosen
  PUs; §3.4 uses this to force two mcf copies onto one physical core
  (Fig. 11d).
* **Placement stickiness** — a thread prefers its previous PU, minimising
  migrations; migrations and preemptions are counted as context switches.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.sim.cpu_topology import Topology
from repro.sim.process import SimThread, TaskState

#: vruntime weight per nice level, approximating Linux's 1.25x per step.
NICE_WEIGHT_STEP = 1.25


@dataclass
class Dispatch:
    """Result of one scheduling round.

    Attributes:
        assignment: pu_id -> thread scheduled there this tick.
        preempted: threads that were running last tick but lost their PU.
    """

    assignment: dict[int, SimThread]
    preempted: list[SimThread]


class Scheduler:
    """Tick-based dispatcher over a :class:`Topology`."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._last_assignment: dict[int, SimThread] = {}

    def _eligible_pus(self, thread: SimThread) -> list[int]:
        affinity = thread.process.affinity
        if affinity is None:
            return [p.pu_id for p in self.topology.pus]
        return [p.pu_id for p in self.topology.pus if p.pu_id in affinity]

    def dispatch(self, runnable: list[SimThread], dt: float) -> Dispatch:
        """Assign runnable threads to PUs for one tick of length ``dt``.

        Threads are considered in vruntime order (fairness); each picks, in
        preference order: its previous PU if free and eligible; a free PU on
        a fully idle core; any free eligible PU. Unplaced threads wait.

        Side effects: updates each scheduled thread's ``vruntime``,
        ``last_pu`` and ``context_switches``.
        """
        runnable = [t for t in runnable if t.state is TaskState.RUNNABLE]
        order = sorted(runnable, key=lambda t: (t.vruntime, t.tid))
        return self._place(order, dt)

    def dispatch_columns(
        self,
        threads: list[SimThread],
        tids: np.ndarray,
        vruntimes: np.ndarray,
        candidate_slots: np.ndarray,
        dt: float,
    ) -> Dispatch:
        """Columnar :meth:`dispatch`: candidates arrive as index arrays.

        ``candidate_slots`` indexes the parallel ``threads``/``tids``/
        ``vruntimes`` columns (runnable and duty-gated already). The
        fairness order comes from one ``np.lexsort`` over the columns —
        bitwise the same order as ``sorted(key=(vruntime, tid))``, since
        tids are unique — and the placement walk is shared with the scalar
        path, so the two produce identical assignments and side effects.
        Only the walked prefix of the order ever materialises thread
        objects (placement stops when the PUs run out).
        """
        order: Iterable[SimThread]
        if len(candidate_slots):
            ranked = candidate_slots[
                np.lexsort((tids[candidate_slots], vruntimes[candidate_slots]))
            ]
            order = (threads[slot] for slot in ranked)
        else:
            order = ()
        return self._place(order, dt)

    def _place(self, order: Iterable[SimThread], dt: float) -> Dispatch:
        """Walk threads in fairness order and place them on free PUs.

        The shared core of both dispatch entry points; all scheduler side
        effects (vruntime, last_pu, context switches, placement memory)
        happen here, identically for either caller.
        """
        free_pus = {p.pu_id for p in self.topology.pus}
        core_busy: dict[int, int] = {}
        assignment: dict[int, SimThread] = {}

        for thread in order:
            if not free_pus:
                break
            eligible = [pu for pu in self._eligible_pus(thread) if pu in free_pus]
            if not eligible:
                continue
            chosen = self._pick_pu(thread, eligible, core_busy)
            free_pus.discard(chosen)
            core = self.topology.pu(chosen).core_id
            core_busy[core] = core_busy.get(core, 0) + 1
            assignment[chosen] = thread

        previous = self._last_assignment
        preempted = [
            t
            for pu, t in previous.items()
            if t.state is TaskState.RUNNABLE and assignment.get(pu) is not t
            and t not in assignment.values()
        ]
        for pu, thread in assignment.items():
            if previous.get(pu) is not thread:
                thread.context_switches += 1
            weight = NICE_WEIGHT_STEP ** thread.process.nice
            thread.vruntime += dt * weight
            thread.last_pu = pu
        self._last_assignment = dict(assignment)
        return Dispatch(assignment=assignment, preempted=preempted)

    def _pick_pu(
        self, thread: SimThread, eligible: list[int], core_busy: dict[int, int]
    ) -> int:
        def core_of(pu: int) -> int:
            return self.topology.pu(pu).core_id

        idle_core = [pu for pu in eligible if core_busy.get(core_of(pu), 0) == 0]
        pool = idle_core or eligible
        if thread.last_pu in pool:
            return thread.last_pu
        return min(pool)

    def forget(self, thread: SimThread) -> None:
        """Drop a dead thread from placement memory."""
        for pu, t in list(self._last_assignment.items()):
            if t is thread:
                del self._last_assignment[pu]
