"""Command-line front end: ``python -m repro.verify``.

Two modes:

* ``--fuzz N`` generates N fresh seeded scenarios, runs every oracle
  over each, and on failure shrinks the scenario and writes a replay
  artifact to ``--artifact-dir``. Exits non-zero if any seed failed.
* ``--replay FILE`` re-executes a previously written artifact and
  reports whether its violations still reproduce.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence

from repro.verify.oracles import check_scenario
from repro.verify.scenario import generate
from repro.verify.shrink import replay_artifact, shrink, write_artifact


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.verify",
        description=(
            "Differential conformance harness: fuzz seeded scenarios "
            "through the oracle registry, shrink failures to replay "
            "artifacts."
        ),
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--fuzz",
        type=int,
        metavar="N",
        help="generate and check N seeded scenarios",
    )
    mode.add_argument(
        "--replay",
        metavar="FILE",
        help="re-execute a repro-<hash>.json artifact",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="first seed of the fuzz range (default 0)",
    )
    parser.add_argument(
        "--artifact-dir",
        default="verify",
        help="directory for shrunk replay artifacts (default: verify/)",
    )
    parser.add_argument(
        "--time-box",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop fuzzing early after this many seconds",
    )
    parser.add_argument(
        "--max-shrink-evals",
        type=int,
        default=200,
        help="cap on candidate executions while shrinking (default 200)",
    )
    return parser


def _fuzz(args: argparse.Namespace) -> int:
    started = time.monotonic()
    failures = 0
    checked = 0
    for seed in range(args.seed, args.seed + args.fuzz):
        if (
            args.time_box is not None
            and time.monotonic() - started > args.time_box
        ):
            print(
                f"time box reached after {checked}/{args.fuzz} seeds",
                file=sys.stderr,
            )
            break
        scenario = generate(seed)
        violations = check_scenario(scenario)
        checked += 1
        if not violations:
            continue
        failures += 1
        print(f"seed {seed}: {len(violations)} violation(s)", file=sys.stderr)
        for v in violations[:5]:
            print(f"  [{v.oracle}] {v.message}", file=sys.stderr)
        small = shrink(scenario, max_evals=args.max_shrink_evals)
        final = check_scenario(small)
        path = write_artifact(small, final or violations, args.artifact_dir)
        print(
            f"  shrunk {len(scenario.tasks) + len(scenario.jobs)} -> "
            f"{len(small.tasks) + len(small.jobs)} work items; "
            f"artifact: {path}",
            file=sys.stderr,
        )
    print(f"{checked} scenario(s) checked, {failures} failing")
    return 1 if failures else 0


def _replay(args: argparse.Namespace) -> int:
    scenario, recorded, current = replay_artifact(args.replay)
    print(
        f"scenario {scenario.digest()} (kind={scenario.kind}, "
        f"seed={scenario.seed}): {len(recorded)} recorded violation(s), "
        f"{len(current)} on replay"
    )
    for v in current:
        print(f"  [{v.oracle}] {v.message}")
    if current:
        return 1
    if recorded:
        print("recorded violations no longer reproduce (bug fixed?)")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.replay is not None:
        return _replay(args)
    return _fuzz(args)
