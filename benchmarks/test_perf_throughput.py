"""Hot-path throughput: the columnar ``run_ticks`` kernel vs scalar ticks.

The paper's tool promises monitoring overhead in the noise (§2.5); our
bottleneck is the simulation itself. This benchmark drives two synthetic
populations — the historical 200-process node and a 1000-process node,
every task carrying a ten-event screen — through both machine advance
paths and records the results under ``benchmarks/out/``:

* ``BENCH_throughput.json``        — the full run (default).
* ``BENCH_throughput_smoke.json``  — the CI smoke run
  (``REPRO_BENCH_SMOKE=1``).

The columnar machine is warmed long past the memo-orbit settling point
(~2000 ticks at 1000 processes: the contention/rate memos key on object
identities that converge once the scheduler's round-robin orbit has
revisited every co-schedule) because steady state is the regime a
long-running monitor lives in. The scalar reference has no memos to warm,
so its warmup only has to cover allocator/startup jitter. Bitwise
equivalence of the two paths is proven separately by
``tests/test_run_ticks_equivalence.py`` and the ``scalar-columnar-machine``
oracle; this file only times them.

Floors: the full run asserts the columnar kernel's speedup and absolute
throughput (task-ticks/second = live tasks x ticks / wall second) per
scenario. The smoke run asserts a deliberately conservative speedup floor
— shared CI runners make ratios noisy, but a columnar kernel that has
collapsed to scalar speed still fails loudly.
"""

from __future__ import annotations

import json
import os
import time

from _harness import OUT_DIR

from repro.sim.arch import NEHALEM
from repro.sim.events import Event
from repro.sim.machine import SimMachine
from repro.sim.workloads import synthetic

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Ten counters per task, the width of a realistic custom screen.
EVENTS = (
    Event.INSTRUCTIONS,
    Event.CYCLES,
    Event.CACHE_REFERENCES,
    Event.CACHE_MISSES,
    Event.BRANCH_INSTRUCTIONS,
    Event.BRANCH_MISSES,
    Event.L1D_ACCESSES,
    Event.L1D_MISSES,
    Event.LOADS,
    Event.STORES,
)

#: (name, processes, columnar warmup, measured columnar ticks,
#:  scalar warmup, measured scalar ticks, min speedup, min task-ticks/s).
#: Scalar tick counts are smaller because the scalar path is the slow one
#: being measured, not the one under assertion.
SCENARIOS = (
    ("node200", 200, 600, 1000, 100, 300, 3.0, 10_000.0),
    ("node1000", 1000, 2500, 1000, 100, 200, 10.0, 10_000.0),
)
if SMOKE:
    SCENARIOS = (("node200", 200, 60, 60, 20, 40, None, None),)

#: Smoke asserts only this conservative ratio on the small scenario.
SMOKE_MIN_SPEEDUP = 2.0

#: Best-of-N timing damps scheduler noise on shared machines.
REPEATS = 1 if SMOKE else 2


def build_machine(processes: int) -> SimMachine:
    """A 4-core node oversubscribed ``processes``:8 with monitored tasks."""
    machine = SimMachine(
        NEHALEM, sockets=1, cores_per_socket=4, tick=0.1, seed=7
    )
    for spec in synthetic.generate_specs(processes, seed=3):
        workload = synthetic.build(spec, NEHALEM, seed=11)
        proc = machine.spawn(spec.name, workload, nthreads=1, duty_cycle=1.0)
        for event in EVENTS:
            machine.counters.open(event, proc.pid, 0)
    return machine


def _time_scalar(processes: int, warmup: int, measured: int) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        machine = build_machine(processes)
        for _ in range(warmup):
            machine._step(machine.tick)
        t0 = time.perf_counter()
        for _ in range(measured):
            machine._step(machine.tick)
        best = min(best, time.perf_counter() - t0)
    return best / measured


def _time_columnar(processes: int, warmup: int, measured: int) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        machine = build_machine(processes)
        machine.run_ticks(warmup)
        t0 = time.perf_counter()
        machine.run_ticks(measured)
        best = min(best, time.perf_counter() - t0)
    return best / measured


def test_throughput_speedup():
    results = []
    for (name, processes, col_warm, col_ticks, sc_warm, sc_ticks,
         min_speedup, min_task_ticks) in SCENARIOS:
        scalar_per_tick = _time_scalar(processes, sc_warm, sc_ticks)
        columnar_per_tick = _time_columnar(processes, col_warm, col_ticks)
        speedup = scalar_per_tick / columnar_per_tick
        task_ticks_per_sec = processes / columnar_per_tick
        results.append(
            {
                "scenario": name,
                "processes": processes,
                "events_per_task": len(EVENTS),
                "warmup_ticks": col_warm,
                "measured_ticks": col_ticks,
                "scalar_ms_per_tick": round(scalar_per_tick * 1e3, 4),
                "columnar_ms_per_tick": round(columnar_per_tick * 1e3, 4),
                "speedup": round(speedup, 3),
                "ticks_per_second_columnar": round(1.0 / columnar_per_tick, 1),
                "task_ticks_per_second": round(task_ticks_per_sec, 1),
                "min_speedup": min_speedup,
                "min_task_ticks_per_second": min_task_ticks,
            }
        )
        print(
            f"\n{name}: scalar {scalar_per_tick*1e3:.3f} ms/tick, "
            f"columnar {columnar_per_tick*1e3:.3f} ms/tick, "
            f"speedup {speedup:.1f}x, "
            f"{task_ticks_per_sec:,.0f} task-ticks/s"
        )
    payload = {
        "arch": NEHALEM.name,
        "sockets": 1,
        "cores_per_socket": 4,
        "tick": 0.1,
        "smoke": SMOKE,
        "results": results,
    }
    OUT_DIR.mkdir(exist_ok=True)
    artifact = "BENCH_throughput_smoke.json" if SMOKE else "BENCH_throughput.json"
    (OUT_DIR / artifact).write_text(json.dumps(payload, indent=2) + "\n")
    for entry in results:
        if SMOKE:
            assert entry["speedup"] >= SMOKE_MIN_SPEEDUP, (
                f"{entry['scenario']}: columnar speedup collapsed to "
                f"{entry['speedup']:.2f}x (< smoke floor {SMOKE_MIN_SPEEDUP}x)"
            )
            continue
        assert entry["speedup"] >= entry["min_speedup"], (
            f"{entry['scenario']}: columnar path is only "
            f"{entry['speedup']:.2f}x faster (floor {entry['min_speedup']}x)"
        )
        assert entry["task_ticks_per_second"] >= entry["min_task_ticks_per_second"], (
            f"{entry['scenario']}: {entry['task_ticks_per_second']:,.0f} "
            f"task-ticks/s below floor "
            f"{entry['min_task_ticks_per_second']:,.0f}"
        )
