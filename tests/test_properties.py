"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expr import Expression
from repro.sim import NEHALEM
from repro.sim.cache import MemoryBehavior, hit_ratio, miss_chain
from repro.sim.counters import CounterTable
from repro.sim.events import Event
from repro.sim.isa import InstructionMix
from repro.util.ringbuffer import RingBuffer
from repro.util.stats import OnlineStats

# ---------------------------------------------------------------------------
# Cache model invariants
# ---------------------------------------------------------------------------

_capacity = st.floats(min_value=1.0, max_value=1e10)
_ws = st.floats(min_value=0.0, max_value=1e12)
_theta = st.floats(min_value=0.01, max_value=2.0)


@given(_capacity, _ws, _theta)
def test_hit_ratio_in_unit_interval(capacity, ws, theta):
    h = hit_ratio(capacity, ws, theta)
    assert 0.0 <= h <= 1.0


@given(
    st.lists(_capacity, min_size=2, max_size=2).map(sorted),
    _ws,
    _theta,
)
def test_hit_ratio_monotone_in_capacity(caps, ws, theta):
    assert hit_ratio(caps[0], ws, theta) <= hit_ratio(caps[1], ws, theta) + 1e-12


_behavior = st.builds(
    MemoryBehavior,
    working_set=st.integers(min_value=0, max_value=1 << 34),
    locality=st.floats(min_value=0.1, max_value=3.0),
    streaming=st.floats(min_value=0.0, max_value=1.0),
    mlp=st.floats(min_value=0.5, max_value=8.0),
)

_shares = st.lists(
    st.floats(min_value=0.05, max_value=1.0), min_size=3, max_size=3
)


@given(_behavior, st.floats(min_value=0.0, max_value=1.0), _shares)
def test_miss_chain_conservation(behavior, refs, shares):
    """At every level: 0 <= misses <= accesses; accesses chain downward."""
    levels = [
        (spec, spec.size * share)
        for spec, share in zip(NEHALEM.cache_levels, shares)
    ]
    p = miss_chain(behavior, refs, levels)
    assert len(p.accesses) == len(levels)
    for acc, miss in zip(p.accesses, p.misses):
        assert -1e-12 <= miss <= acc + 1e-9
    for i in range(1, len(levels)):
        assert p.accesses[i] == pytest.approx(p.misses[i - 1])
    # Misses are non-increasing outward (inclusion).
    for i in range(1, len(p.misses)):
        assert p.misses[i] <= p.misses[i - 1] + 1e-9


@given(_behavior, st.floats(min_value=0.1, max_value=1.0))
def test_miss_chain_contention_never_helps(behavior, share):
    """Shrinking every level's capacity never reduces misses."""
    full = miss_chain(
        behavior, 0.3, [(s, float(s.size)) for s in NEHALEM.cache_levels]
    )
    contended = miss_chain(
        behavior, 0.3, [(s, s.size * share) for s in NEHALEM.cache_levels]
    )
    for a, b in zip(contended.misses, full.misses):
        assert a >= b - 1e-9


# ---------------------------------------------------------------------------
# Instruction mix invariants
# ---------------------------------------------------------------------------

@st.composite
def _mixes(draw):
    raw = draw(
        st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=5, max_size=5)
    )
    total = sum(raw)
    if total <= 0:
        raw = [1.0, 0, 0, 0, 0]
        total = 1.0
    f = [x / total for x in raw]
    return InstructionMix.of(
        int_alu=f[0], load=f[1], store=f[2], branch=f[3], fp_sse=f[4]
    )


@given(_mixes())
def test_mix_rates_bounded(mix):
    assert 0 <= mix.mem_refs <= 1
    assert 0 <= mix.fp_ops <= 1
    assert mix.fp_ops == pytest.approx(mix.x87_ops + mix.sse_ops)


@given(_mixes(), _mixes(), st.floats(min_value=0.0, max_value=1.0))
def test_mix_blend_stays_normalised(a, b, w):
    blended = a.scaled_toward(b, w)
    assert sum(blended.fractions.values()) == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Counter table invariants
# ---------------------------------------------------------------------------

@given(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=1, max_value=40),
)
@settings(max_examples=40)
def test_counter_scaling_recovers_truth(width, n_events, ticks):
    """value * enabled/running approximates the true count under any
    PMU width and rotation schedule."""
    table = CounterTable(pmu_width=width)
    events = list(Event)[:n_events]
    counters = [table.open(e, 1, 0) for e in events]
    for _ in range(ticks):
        table.accrue(
            1, {e: 1.0 for e in events}, wall_dt=1.0, scheduled_dt=1.0, alive=True
        )
    for c in counters:
        value, enabled, running = c.reading()
        assert enabled == pytest.approx(ticks)
        assert running <= enabled + 1e-9
        if running > 0:
            scaled = value * enabled / running
            # Rotation granularity bounds the error by one full window pass.
            assert scaled == pytest.approx(ticks, abs=max(2.0, n_events / width))


# ---------------------------------------------------------------------------
# Expression evaluator vs Python eval oracle
# ---------------------------------------------------------------------------

_small_float = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@given(_small_float, _small_float, _small_float)
def test_expression_matches_python(a, b, c):
    env = {"a": a, "b": b, "c": c}
    expr = Expression("a * b + c - a / (b + 1000001)")
    expected = a * b + c - a / (b + 1000001)
    assert expr.evaluate(env) == pytest.approx(expected, rel=1e-9, abs=1e-9)


# ---------------------------------------------------------------------------
# Utility invariants
# ---------------------------------------------------------------------------

@given(st.lists(st.integers(), max_size=200), st.integers(min_value=1, max_value=16))
def test_ringbuffer_keeps_suffix(items, capacity):
    rb = RingBuffer(capacity)
    rb.extend(items)
    assert list(rb) == items[-capacity:]


@given(st.lists(_small_float, min_size=2, max_size=100))
def test_online_stats_match_numpy(xs):
    s = OnlineStats()
    s.add_many(xs)
    assert s.mean == pytest.approx(float(np.mean(xs)), rel=1e-6, abs=1e-6)
    assert s.variance == pytest.approx(
        float(np.var(xs, ddof=1)), rel=1e-5, abs=1e-5
    )


@given(
    st.lists(_small_float, min_size=1, max_size=50),
    st.lists(_small_float, min_size=1, max_size=50),
)
def test_online_stats_merge_associative(xs, ys):
    a, b, c = OnlineStats(), OnlineStats(), OnlineStats()
    a.add_many(xs)
    b.add_many(ys)
    c.add_many(xs + ys)
    merged = a.merge(b)
    assert merged.count == c.count
    assert merged.mean == pytest.approx(c.mean, rel=1e-6, abs=1e-6)
