"""Simulated /proc: the TaskProvider view over a SimMachine."""

from __future__ import annotations

from repro.errors import ProcfsError
from repro.procfs.model import ProcessInfo
from repro.sim.machine import SimMachine
from repro.sim.process import SimProcess


class SimProcReader:
    """Task provider backed by a simulated machine."""

    def __init__(self, machine: SimMachine) -> None:
        self.machine = machine

    def uptime(self) -> float:
        """Virtual seconds since machine boot."""
        return self.machine.now

    def _info(self, proc: SimProcess) -> ProcessInfo:
        lead = proc.threads[0]
        return ProcessInfo(
            pid=proc.pid,
            tids=tuple(t.tid for t in proc.threads),
            uid=proc.uid,
            user=proc.user,
            comm=proc.command[:15],
            state=proc.state.value,
            cpu_seconds=proc.cpu_time,
            start_time=proc.start_time,
            processor=max(lead.last_pu, 0),
        )

    def process(self, pid: int) -> ProcessInfo:
        """One live process.

        Raises:
            ProcfsError: unknown pid or already-exited process (its /proc
                entry is gone).
        """
        proc = self.machine.processes.get(pid)
        if proc is None or not proc.alive:
            raise ProcfsError(f"no /proc entry for pid {pid}")
        return self._info(proc)

    def list_processes(self) -> list[ProcessInfo]:
        """All live simulated processes."""
        return [self._info(p) for p in self.machine.live_processes()]
