"""perf_event_attr ABI layout and constants."""

import ctypes

import pytest

from repro.perf import abi


class TestLayout:
    def test_attr_size_constant(self):
        assert abi.PERF_ATTR_SIZE_VER0 == 64

    def test_struct_packs_ver0_core(self):
        assert ctypes.sizeof(abi.PerfEventAttr) == 72

    def test_field_offsets_match_kernel(self):
        """type@0, size@4, config@8, read_format@32, flags@40 (x86_64)."""
        assert abi.PerfEventAttr.type.offset == 0
        assert abi.PerfEventAttr.size.offset == 4
        assert abi.PerfEventAttr.config.offset == 8
        assert abi.PerfEventAttr.sample_type.offset == 24
        assert abi.PerfEventAttr.read_format.offset == 32
        assert abi.PerfEventAttr.flags.offset == 40


class TestConstants:
    def test_generic_hw_ids(self):
        assert abi.HardwareEventId.CPU_CYCLES == 0
        assert abi.HardwareEventId.INSTRUCTIONS == 1
        assert abi.HardwareEventId.CACHE_MISSES == 3
        assert abi.HardwareEventId.BRANCH_MISSES == 5

    def test_type_ids(self):
        assert abi.PerfTypeId.HARDWARE == 0
        assert abi.PerfTypeId.RAW == 4

    def test_hw_cache_config_packing(self):
        config = abi.hw_cache_config(
            abi.HwCacheId.L1D, abi.HwCacheOpId.READ, abi.HwCacheResultId.MISS
        )
        assert config == 0 | (0 << 8) | (1 << 16)

    def test_ioctls(self):
        assert abi.IOCTL_ENABLE == 0x2400
        assert abi.IOCTL_DISABLE == 0x2401
        assert abi.IOCTL_RESET == 0x2403

    def test_syscall_number(self):
        assert abi.SYSCALL_NR_X86_64 == 298


class TestCountingAttr:
    def test_defaults(self):
        attr = abi.counting_attr(abi.PerfTypeId.HARDWARE, 1)
        assert attr.type == 0
        assert attr.size == 64
        assert attr.config == 1
        assert attr.sample_period_or_freq == 0  # counting, not sampling
        assert attr.read_format == int(
            abi.ReadFormat.TOTAL_TIME_ENABLED | abi.ReadFormat.TOTAL_TIME_RUNNING
        )

    def test_excludes_kernel_by_default(self):
        attr = abi.counting_attr(abi.PerfTypeId.HARDWARE, 0)
        assert attr.flags & abi.FLAG_EXCLUDE_KERNEL
        assert attr.flags & abi.FLAG_EXCLUDE_HV
        assert not attr.flags & abi.FLAG_DISABLED

    def test_inherit_flag(self):
        attr = abi.counting_attr(abi.PerfTypeId.HARDWARE, 0, inherit=True)
        assert attr.flags & abi.FLAG_INHERIT

    def test_disabled_flag(self):
        attr = abi.counting_attr(abi.PerfTypeId.HARDWARE, 0, disabled=True)
        assert attr.flags & abi.FLAG_DISABLED
