"""The SGE-like grid substrate (§3.4's production environment)."""

import math

import pytest

from repro.errors import SimulationError
from repro.sim.grid import Grid, NodeSpec, QueueSpec, default_fleet, sge_queues
from repro.sim.workloads import datacenter


def _job(seconds=60.0, ipc=1.2):
    return datacenter.compute_job("job", ipc, duration_hint=seconds)


def _endless():
    return datacenter.compute_job("svc", 1.2)


@pytest.fixture
def grid():
    return Grid(tick=1.0, seed=3)


class TestQueues:
    def test_sixteen_queues(self):
        queues = sge_queues()
        assert len(queues) == 16
        assert len({q.name for q in queues}) == 16

    def test_short_queues_outrank_long(self):
        queues = {q.name: q for q in sge_queues()}
        assert (
            queues["short-2g-asap"].priority > queues["long-2g-asap"].priority
        )
        assert (
            queues["short-2g-asap"].priority
            > queues["short-2g-overnight"].priority
        )

    def test_eternal_queues_are_dedicated(self):
        for q in sge_queues():
            assert q.dedicated_only == q.name.startswith("eternal")


class TestSubmission:
    def test_unknown_queue(self, grid):
        with pytest.raises(SimulationError):
            grid.submit("x", _job(), queue="express-lane")

    def test_memory_over_queue_limit(self, grid):
        with pytest.raises(SimulationError):
            grid.submit(
                "fat", _job(), queue="short-2g-asap", memory_bytes=4 * 1024**3
            )

    def test_job_lifecycle(self, grid):
        job = grid.submit("j", _job(seconds=30.0), queue="short-2g-asap")
        assert job.state == "pending"
        grid.run_for(2.0)
        assert job.state == "running"
        assert job.node is not None
        grid.run_for(60.0)
        assert job.state == "done"
        assert not job.killed
        assert job.finished_at is not None


class TestAdmission:
    def test_node_capacity_is_logical_cores(self, grid):
        jobs = [
            grid.submit(f"j{i}", _endless(), queue="short-2g-asap")
            for i in range(80)
        ]
        grid.run_for(3.0)
        running = grid.jobs("running")
        # 4 standard nodes; 2 x 16 PUs + 2 x 8 PUs = 48 slots.
        assert len(running) == 48
        assert len(grid.jobs("pending")) == 32
        for name, load in grid.utilisation().items():
            if not name.startswith("long"):
                assert load == 1.0

    def test_memory_limits_admission(self):
        fleet = [NodeSpec(name="tiny", memory_bytes=4 * 1024**3)]
        grid = Grid(fleet, tick=1.0)
        a = grid.submit(
            "a", _endless(), queue="short-2g-asap", memory_bytes=2 * 1024**3
        )
        b = grid.submit(
            "b", _endless(), queue="short-2g-asap", memory_bytes=2 * 1024**3
        )
        c = grid.submit(
            "c", _endless(), queue="short-2g-asap", memory_bytes=2 * 1024**3
        )
        grid.run_for(2.0)
        assert a.state == "running" and b.state == "running"
        assert c.state == "pending"  # would exceed physical memory

    def test_slots_free_on_completion(self, grid):
        first = [
            grid.submit(f"f{i}", _job(seconds=20.0), queue="short-2g-asap")
            for i in range(48)
        ]
        waiting = grid.submit("w", _job(seconds=20.0), queue="short-2g-asap")
        grid.run_for(5.0)
        assert waiting.state == "pending"
        grid.run_for(40.0)
        assert waiting.state in ("running", "done")

    def test_fifo_within_queue(self, grid):
        fleet = [NodeSpec(name="one", sockets=1, cores_per_socket=1)]
        small = Grid(fleet, tick=1.0)
        a = small.submit("a", _job(seconds=10.0), queue="short-2g-asap")
        b = small.submit("b", _job(seconds=10.0), queue="short-2g-asap")
        small.run_for(2.0)
        # One node, two PUs (SMT): both fit actually — use states to check
        # order only when constrained; just assert a dispatched not after b.
        assert a.started_at is not None
        assert b.started_at is None or a.started_at <= b.started_at


class TestPolicies:
    def test_priority_dispatch_order(self):
        fleet = [NodeSpec(name="one", sockets=1, cores_per_socket=1)]
        grid = Grid(fleet, tick=1.0)  # 2 PUs -> 2 slots
        low = [
            grid.submit(f"low{i}", _endless(), queue="long-2g-overnight")
            for i in range(2)
        ]
        high = [
            grid.submit(f"high{i}", _endless(), queue="short-2g-asap")
            for i in range(2)
        ]
        grid.run_for(2.0)
        assert all(j.state == "running" for j in high)
        assert all(j.state == "pending" for j in low)

    def test_wallclock_kill(self):
        queues = [
            QueueSpec("blink", max_wallclock=10.0, memory_limit=2 * 1024**3)
        ]
        grid = Grid([NodeSpec(name="n")], queues, tick=1.0)
        job = grid.submit("svc", _endless(), queue="blink")
        grid.run_for(30.0)
        assert job.state == "done"
        assert job.killed
        assert job.finished_at == pytest.approx(11.0, abs=2.0)

    def test_dedicated_nodes_reserved(self, grid):
        regular = grid.submit("reg", _endless(), queue="short-2g-asap")
        eternal = grid.submit(
            "eternal", _endless(), queue="eternal-8g-overnight",
            memory_bytes=8 * 1024**3,
        )
        grid.run_for(2.0)
        assert regular.node is not None and not regular.node.startswith("long")
        assert eternal.node is not None and eternal.node.startswith("long")

    def test_dedicated_job_waits_for_its_node(self):
        # No dedicated node in the fleet: the eternal job never dispatches.
        fleet = [NodeSpec(name="n")]
        grid = Grid(fleet, tick=1.0)
        job = grid.submit(
            "stuck", _endless(), queue="eternal-8g-overnight",
            memory_bytes=8 * 1024**3,
        )
        grid.run_for(5.0)
        assert job.state == "pending"


class TestMonitoring:
    def test_tiptop_on_a_grid_node(self, grid):
        """The §3.4 workflow: attach tiptop to one production node."""
        from repro import Options, SimHost, TipTop

        for i in range(20):
            grid.submit(f"j{i}", _endless(), queue="short-2g-asap", user="u1")
        grid.run_for(2.0)
        node = grid.node("node00")
        with TipTop(SimHost(node), Options(delay=5.0)) as app:
            recorder = app.run_collect(2)
        assert len(recorder.pids()) > 0
        for pid in recorder.pids():
            assert 0.1 < recorder.mean(pid, "IPC") < 4.0
        # Tiptop's virtual clock advanced only that node... the grid keeps
        # its own time; re-synchronise by running the grid afterwards.
        assert node.now > grid.now


class TestFleet:
    def test_default_fleet_shape(self):
        fleet = default_fleet()
        assert sum(1 for n in fleet if n.dedicated_queue) == 1
        assert len(fleet) == 5

    def test_empty_grid_rejected(self):
        with pytest.raises(SimulationError):
            Grid([], tick=1.0)
        with pytest.raises(SimulationError):
            Grid([NodeSpec(name="n")], [], tick=1.0)
