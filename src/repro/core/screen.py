"""Screen definitions: named sets of columns plus the counters they need.

The default screen reproduces Figure 1 exactly:
``PID USER %CPU Mcycle Minst IPC DMIS COMMAND``. Further built-in screens
cover the paper's other use cases — the FP-assist column added in §3.1, the
L2/L3 cache view of §3.4 (Fig. 11), a branch view, and an instruction-mix
view for the §2.6 characterisation rates. Custom screens come from plain
dicts (the equivalent of tiptop's XML configuration file).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.columns import (
    COMMAND_COLUMN,
    CPU_COLUMN,
    Column,
    PID_COLUMN,
    USER_COLUMN,
    expr_column,
)
from repro.core.expr import canonical_name
from repro.errors import ConfigError
from repro.perf.events import EventSpec, event_names, resolve_event


@dataclass(frozen=True)
class Screen:
    """A named column layout.

    Attributes:
        name: screen name for selection (-S option equivalent).
        description: one-liner shown in help.
        columns: the column tuple, in display order.
    """

    name: str
    description: str
    columns: tuple[Column, ...]

    def with_columns(self, *extra: Column) -> "Screen":
        """This screen plus ``extra`` columns appended (headers must be new).

        Used e.g. by chaos mode to append the HEALTH lifecycle column to
        whatever screen the user selected.

        Raises:
            ConfigError: when an extra column duplicates an existing header.
        """
        have = {c.header for c in self.columns}
        for column in extra:
            if column.header in have:
                raise ConfigError(
                    f"screen {self.name!r} already has column "
                    f"{column.header!r}"
                )
            have.add(column.header)
        return Screen(
            name=self.name,
            description=self.description,
            columns=(*self.columns, *extra),
        )

    def required_events(self) -> list[EventSpec]:
        """Counter events this screen's expressions reference, resolved.

        Raises:
            ConfigError: for an identifier that is neither a built-in
                variable nor a known event.
        """
        known = {canonical_name(n): n for n in event_names()}
        builtins = {"delta_t", "cpu_pct"}
        needed: dict[str, EventSpec] = {}
        for column in self.columns:
            for var in sorted(column.variables()):
                if var in builtins:
                    continue
                if var not in known:
                    raise ConfigError(
                        f"screen {self.name!r}: column {column.header!r} uses "
                        f"unknown identifier {var!r}"
                    )
                spec = resolve_event(known[var])
                needed[spec.name] = spec
        return list(needed.values())


def _screen(name: str, description: str, *columns: Column) -> Screen:
    return Screen(name=name, description=description, columns=tuple(columns))


#: Fig. 1's layout: the out-of-the-box tiptop view.
DEFAULT_SCREEN = _screen(
    "default",
    "cycles, instructions, IPC and LLC misses (Figure 1)",
    PID_COLUMN,
    USER_COLUMN,
    CPU_COLUMN,
    expr_column("Mcycle", "cycles / 1000000", width=9, decimals=0),
    expr_column("Minst", "instructions / 1000000", width=9, decimals=0),
    expr_column("IPC", "instructions / cycles", width=5),
    expr_column("DMIS", "100 * cache_misses / instructions", width=5, decimals=1),
    COMMAND_COLUMN,
)

#: §3.1: "We added a new column to tiptop in order to trace simultaneously
#: IPC and FP assist events."
FPASSIST_SCREEN = _screen(
    "fpassist",
    "IPC plus micro-code FP assists per 100 instructions (§3.1)",
    PID_COLUMN,
    USER_COLUMN,
    CPU_COLUMN,
    expr_column("IPC", "instructions / cycles", width=5),
    expr_column("ASSIST", "100 * fp_assist / instructions", width=7, decimals=1),
    expr_column("UPI", "uops_executed / instructions", width=6),
    COMMAND_COLUMN,
)

#: §3.4 / Fig. 11: per-level cache misses per 100 instructions.
CACHE_SCREEN = _screen(
    "cache",
    "per-level cache misses per 100 instructions (Fig. 11)",
    PID_COLUMN,
    USER_COLUMN,
    CPU_COLUMN,
    expr_column("IPC", "instructions / cycles", width=5),
    expr_column("L1MIS", "100 * l1d_misses / instructions", width=6, decimals=1),
    expr_column("L2MIS", "100 * l2_misses / instructions", width=6, decimals=1),
    expr_column("L3MIS", "100 * l3_misses / instructions", width=6, decimals=1),
    COMMAND_COLUMN,
)

BRANCH_SCREEN = _screen(
    "branch",
    "branch density and misprediction ratio",
    PID_COLUMN,
    USER_COLUMN,
    CPU_COLUMN,
    expr_column("IPC", "instructions / cycles", width=5),
    expr_column("BPI", "branch_instructions / instructions", width=5),
    expr_column(
        "%MISP", "100 * branch_misses / branch_instructions", width=6, decimals=1
    ),
    COMMAND_COLUMN,
)

#: §2.6's application-characterisation rates (FPI/LPI/BPI, FPC/LPC).
MIX_SCREEN = _screen(
    "mix",
    "instruction-mix rates of §2.6 (FPI, LPI, BPI, FPC, LPC)",
    PID_COLUMN,
    USER_COLUMN,
    CPU_COLUMN,
    expr_column("IPC", "instructions / cycles", width=5),
    expr_column("FPI", "fp_operations / instructions", width=5),
    expr_column("LPI", "loads / instructions", width=5),
    expr_column("BPI", "branch_instructions / instructions", width=5),
    expr_column("FPC", "fp_operations / cycles", width=5),
    expr_column("LPC", "loads / cycles", width=5),
    # Memory traffic alongside the rates: together with FPC this is the
    # roofline placement input (§2.6's processor-selection use).
    expr_column("DMIS", "100 * cache_misses / instructions", width=5, decimals=1),
    COMMAND_COLUMN,
)

#: §3.4's outlook implemented: average memory latency per task, the signal
#: for DRAM-level contention that LLC miss counts alone cannot show.
LATENCY_SCREEN = _screen(
    "latency",
    "average memory-access latency (detects DRAM contention, §3.4)",
    PID_COLUMN,
    USER_COLUMN,
    CPU_COLUMN,
    expr_column("IPC", "instructions / cycles", width=5),
    expr_column("DMIS", "100 * cache_misses / instructions", width=5, decimals=1),
    expr_column(
        "MEMLAT", "mem_latency_cycles / cache_misses", width=7, decimals=0
    ),
    COMMAND_COLUMN,
)

_BUILTINS: dict[str, Screen] = {
    s.name: s
    for s in (
        DEFAULT_SCREEN,
        FPASSIST_SCREEN,
        CACHE_SCREEN,
        BRANCH_SCREEN,
        MIX_SCREEN,
        LATENCY_SCREEN,
    )
}


def builtin_screens() -> list[Screen]:
    """All built-in screens."""
    return list(_BUILTINS.values())


def get_screen(name: str) -> Screen:
    """Look up a built-in screen.

    Raises:
        ConfigError: unknown screen name.
    """
    try:
        return _BUILTINS[name]
    except KeyError as exc:
        raise ConfigError(
            f"unknown screen {name!r}; built-ins: {sorted(_BUILTINS)}"
        ) from exc


def screen_from_config(config: dict) -> Screen:
    """Build a custom screen from a plain dict.

    The equivalent of tiptop's XML screen configuration::

        screen_from_config({
            "name": "mine",
            "description": "my view",
            "columns": [
                {"header": "IPC", "expr": "instructions / cycles"},
                {"header": "DMIS", "expr": "100*cache_misses/instructions",
                 "width": 6, "decimals": 1},
            ],
        })

    Intrinsic PID/USER/%CPU/COMMAND columns are added around the derived
    ones automatically unless ``"bare": True``.

    Raises:
        ConfigError: missing keys or malformed column entries.
    """
    try:
        name = config["name"]
        column_dicts = config["columns"]
    except KeyError as exc:
        raise ConfigError(f"screen config missing key {exc}") from exc
    if not isinstance(column_dicts, (list, tuple)) or not column_dicts:
        raise ConfigError("screen config needs a non-empty 'columns' list")
    derived: list[Column] = []
    for entry in column_dicts:
        try:
            header = entry["header"]
            text = entry["expr"]
        except (TypeError, KeyError) as exc:
            raise ConfigError(f"bad column entry {entry!r}: {exc}") from exc
        derived.append(
            expr_column(
                header,
                text,
                width=int(entry.get("width", 8)),
                decimals=int(entry.get("decimals", 2)),
            )
        )
    if config.get("bare"):
        columns = tuple(derived)
    else:
        columns = (PID_COLUMN, USER_COLUMN, CPU_COLUMN, *derived, COMMAND_COLUMN)
    screen = Screen(
        name=name,
        description=config.get("description", "custom screen"),
        columns=columns,
    )
    screen.required_events()  # validate identifiers eagerly
    return screen
