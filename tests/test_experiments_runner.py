"""Property tests: the experiment runner is deterministic.

The contracts the ablation artifacts (and the CI smoke diff) stand on:

* same spec + same seeds -> byte-identical JSON artifact;
* execution order and ``--jobs N`` parallelism never change a byte;
* malformed specs fail with a *typed* error and CLI exit status 2.
"""

import json
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, ExperimentError
from repro.experiments import (
    canonical_json,
    from_dict,
    plan,
    run,
    run_cells,
)
from repro.experiments.cli import main
from repro.experiments.report import build_artifact, to_csv, to_markdown

REPO = Path(__file__).parent.parent

#: Small/endless workloads so each property example runs in milliseconds.
FAST_WORKLOADS = ("fp-x87-finite/10", "gc-pause-train/1000", "456.hmmer#0")


def _spec_dicts():
    return st.fixed_dictionaries(
        {
            "name": st.just("prop"),
            "seeds": st.lists(
                st.integers(0, 9999), min_size=1, max_size=2, unique=True
            ),
            "workloads": st.lists(
                st.sampled_from(FAST_WORKLOADS),
                min_size=1,
                max_size=2,
                unique=True,
            ),
            "defaults": st.fixed_dictionaries(
                {
                    "harness": st.just("counters"),
                    "tick": st.sampled_from([0.5, 1.0]),
                    "span": st.just(4.0),
                    "delay": st.sampled_from([1.0, 2.0]),
                }
            ),
            "configs": st.just([{"name": "a"}, {"name": "b", "noise": 0.1}]),
        }
    )


@settings(
    max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(data=_spec_dicts())
def test_same_spec_same_bytes(data):
    """Two full runs of one spec produce byte-identical JSON."""
    spec = from_dict(data)
    first = canonical_json(run(spec))
    second = canonical_json(run(spec))
    assert first == second


@settings(
    max_examples=4, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(data=_spec_dicts(), rnd=st.randoms(use_true_random=False))
def test_cell_order_and_jobs_never_change_results(data, rnd):
    """Shuffled execution on two forked workers = canonical serial run."""
    spec = from_dict(data)
    cells = plan(spec)
    shuffled = list(cells)
    rnd.shuffle(shuffled)
    serial = build_artifact(spec, cells, run_cells(spec, cells, jobs=1))
    parallel = build_artifact(spec, cells, run_cells(spec, shuffled, jobs=2))
    assert canonical_json(serial) == canonical_json(parallel)


def test_derived_views_are_functions_of_the_artifact():
    spec = from_dict(
        {
            "name": "views",
            "seeds": [1],
            "workloads": ["gc-pause-train/1000"],
            "defaults": {"span": 2.0, "delay": 1.0},
            "configs": [{"name": "only"}],
        }
    )
    artifact = run(spec)
    assert to_csv(artifact) == to_csv(run(spec))
    assert to_markdown(artifact) == to_markdown(run(spec))
    header = to_csv(artifact).splitlines()[0].split(",")
    assert header[:4] == ["index", "config", "workload", "seed"]
    # Nested metrics flatten to dotted columns.
    assert any(column.startswith("events.") for column in header)


# ---------------------------------------------------------------------------
# Malformed specs: typed error, exit status 2
# ---------------------------------------------------------------------------

BAD_SPECS = {
    "unparsable-toml": "name = [unclosed",
    "missing-seeds": 'name = "x"\nworkloads = ["456.hmmer#0"]\n[[configs]]\nname = "a"\n',
    "empty-seeds": 'name = "x"\nseeds = []\nworkloads = ["456.hmmer#0"]\n[[configs]]\nname = "a"\n',
    "unknown-top-key": 'name = "x"\nseeds = [1]\nworkloads = ["456.hmmer#0"]\nbogus = 1\n[[configs]]\nname = "a"\n',
    "unknown-config-key": 'name = "x"\nseeds = [1]\nworkloads = ["456.hmmer#0"]\n[[configs]]\nname = "a"\nbogus = 1\n',
    "unknown-workload": 'name = "x"\nseeds = [1]\nworkloads = ["457.hmmer"]\n[[configs]]\nname = "a"\n',
    "bad-modifier": 'name = "x"\nseeds = [1]\nworkloads = ["456.hmmer#9"]\n[[configs]]\nname = "a"\n',
    "bad-harness": 'name = "x"\nseeds = [1]\nworkloads = ["456.hmmer#0"]\n[[configs]]\nname = "a"\nharness = "real"\n',
    "duplicate-config": 'name = "x"\nseeds = [1]\nworkloads = ["456.hmmer#0"]\n[[configs]]\nname = "a"\n[[configs]]\nname = "a"\n',
    "bool-events": 'name = "x"\nseeds = [1]\nworkloads = ["456.hmmer#0"]\n[[configs]]\nname = "a"\nevents = true\n',
    "zero-span-counters": 'name = "x"\nseeds = [1]\nworkloads = ["456.hmmer#0"]\n[[configs]]\nname = "a"\nspan = 0.0\n',
    "negative-delay": 'name = "x"\nseeds = [1]\nworkloads = ["456.hmmer#0"]\n[[configs]]\nname = "a"\ndelay = -1.0\n',
}


@pytest.mark.parametrize("case", sorted(BAD_SPECS), ids=str)
def test_malformed_spec_exits_2(case, tmp_path, capsys):
    path = tmp_path / f"{case}.toml"
    path.write_text(BAD_SPECS[case])
    assert main(["run", str(path)]) == 2
    err = capsys.readouterr().err
    assert "error: ExperimentError:" in err


def test_error_is_typed():
    with pytest.raises(ExperimentError) as excinfo:
        from_dict({"name": "x"})
    assert isinstance(excinfo.value, ConfigError)


def test_unreadable_and_unknown_suffix_exit_2(tmp_path):
    assert main(["run", str(tmp_path / "missing.toml")]) == 2
    other = tmp_path / "spec.yaml"
    other.write_text("name: x\n")
    assert main(["run", str(other)]) == 2


# ---------------------------------------------------------------------------
# CLI happy paths
# ---------------------------------------------------------------------------

def test_cli_run_reproduces_committed_smoke_golden(tmp_path, capsys):
    """The exact contract the CI smoke job enforces, run locally."""
    spec_path = REPO / "benchmarks" / "specs" / "smoke.toml"
    assert main(["run", str(spec_path), "--out", str(tmp_path)]) == 0
    produced = (tmp_path / "smoke" / "results.json").read_text()
    golden = (REPO / "benchmarks" / "specs" / "smoke.golden.json").read_text()
    assert produced == golden
    assert (tmp_path / "smoke" / "results.csv").exists()
    assert (tmp_path / "smoke" / "results.md").exists()
    assert "smoke: 8 cell(s)" in capsys.readouterr().out


def test_cli_jobs_flag_reproduces_the_same_bytes(tmp_path):
    spec_path = REPO / "benchmarks" / "specs" / "smoke.toml"
    assert main(
        ["run", str(spec_path), "--out", str(tmp_path), "--jobs", "4"]
    ) == 0
    produced = (tmp_path / "smoke" / "results.json").read_text()
    golden = (REPO / "benchmarks" / "specs" / "smoke.golden.json").read_text()
    assert produced == golden


def test_cli_regen_signatures_matches_committed_golden(tmp_path):
    target = tmp_path / "sig.json"
    assert main(["--regen-signatures", "--signatures", str(target)]) == 0
    committed = REPO / "tests" / "data" / "workload_signatures.json"
    assert target.read_text() == committed.read_text()


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("456.hmmer", "revolve-original", "gc-pause-train"):
        assert name in out


def test_cli_no_command_prints_help(capsys):
    assert main([]) == 2
    assert "usage:" in capsys.readouterr().out


def test_artifact_is_strict_json():
    spec = from_dict(
        {
            "name": "strict",
            "seeds": [5],
            "workloads": ["fp-x87-finite/10"],
            "defaults": {"span": 2.0, "delay": 1.0},
            "configs": [{"name": "only"}],
        }
    )
    text = canonical_json(run(spec))
    json.loads(text, parse_constant=lambda s: pytest.fail(s))
