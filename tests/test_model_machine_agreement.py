"""Cross-validation: the analytic model vs the executing machine.

The benchmarks trust that what `solo_rates` predicts is what the machine
produces. These tests close that loop across the workload library: run
real workloads to completion on the machine and compare run time, mean
IPC and event totals against pure-model predictions.
"""

import math

import pytest

from repro.pin.inscount import native_run_time
from repro.sim import NEHALEM, PPC970, SimMachine
from repro.sim.core import solo_rates
from repro.sim.events import Event
from repro.sim.workload import Workload
from repro.sim.workloads import spec


def _run_to_completion(arch, workload, tick=1.0, seed=5):
    machine = SimMachine(arch, tick=tick, seed=seed)
    proc = machine.spawn("job", workload)
    counters = {
        e: machine.counters.open(e, proc.pid, proc.uid)
        for e in (Event.INSTRUCTIONS, Event.CYCLES, Event.CACHE_MISSES)
    }
    guard = 0
    while proc.alive and guard < 100_000:
        machine.run_for(10.0)
        guard += 1
    assert not proc.alive, "workload must finish"
    return machine, proc, {e: c.value for e, c in counters.items()}


def _noise_free(workload: Workload) -> Workload:
    from dataclasses import replace

    return Workload(
        workload.name,
        tuple(replace(p, noise=0.0) for p in workload.phases),
        repeat=workload.repeat,
    )


@pytest.mark.parametrize(
    "bench", ["429.mcf", "456.hmmer", "470.lbm", "464.h264ref"]
)
def test_machine_matches_model_run_time(bench):
    workload = _noise_free(spec.workload(bench))
    predicted = native_run_time(NEHALEM, workload)
    machine, proc, counts = _run_to_completion(NEHALEM, workload)
    assert proc.cpu_time == pytest.approx(predicted, rel=0.02)
    assert counts[Event.INSTRUCTIONS] == pytest.approx(
        workload.total_instructions, rel=1e-9
    )


def test_machine_matches_model_mean_ipc():
    workload = _noise_free(spec.workload("482.sphinx3"))
    machine, proc, counts = _run_to_completion(NEHALEM, workload)
    measured = counts[Event.INSTRUCTIONS] / counts[Event.CYCLES]
    # Weighted-harmonic model mean.
    cycles = sum(
        p.instructions / solo_rates(NEHALEM, p).ipc for p in workload.phases
    )
    predicted = workload.total_instructions / cycles
    assert measured == pytest.approx(predicted, rel=0.02)


def test_machine_matches_model_llc_misses():
    workload = _noise_free(spec.workload("429.mcf"))
    machine, proc, counts = _run_to_completion(NEHALEM, workload)
    predicted = sum(
        p.instructions * solo_rates(NEHALEM, p).events[Event.CACHE_MISSES]
        for p in workload.phases
    )
    # Bus contention from the task itself can shift the effective latency
    # but never the miss *count* — misses depend on capacities alone.
    assert counts[Event.CACHE_MISSES] == pytest.approx(predicted, rel=0.01)


def test_cross_arch_run_time_ordering():
    workload = _noise_free(spec.workload("473.astar"))
    ppc_workload = _noise_free(spec.ppc_workload("473.astar"))
    _, neh, _ = _run_to_completion(NEHALEM, workload)
    _, ppc, _ = _run_to_completion(PPC970, ppc_workload, tick=2.0)
    assert ppc.cpu_time > 1.5 * neh.cpu_time
