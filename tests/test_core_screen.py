"""Screens: built-ins and config-driven customs."""

import pytest

from repro.core.screen import (
    DEFAULT_SCREEN,
    builtin_screens,
    get_screen,
    screen_from_config,
)
from repro.errors import ConfigError


class TestBuiltins:
    def test_default_matches_fig1(self):
        headers = [c.header for c in DEFAULT_SCREEN.columns]
        assert headers == [
            "PID", "USER", "%CPU", "Mcycle", "Minst", "IPC", "DMIS", "COMMAND",
        ]

    def test_default_events(self):
        names = {e.name for e in DEFAULT_SCREEN.required_events()}
        assert names == {"cycles", "instructions", "cache-misses"}

    def test_fpassist_screen_counts_assists(self):
        names = {e.name for e in get_screen("fpassist").required_events()}
        assert "fp-assist" in names
        assert "uops-executed" in names

    def test_cache_screen_counts_levels(self):
        names = {e.name for e in get_screen("cache").required_events()}
        assert {"l1d-misses", "l2-misses", "l3-misses"} <= names

    def test_all_builtins_resolve(self):
        for screen in builtin_screens():
            screen.required_events()

    def test_unknown_screen(self):
        with pytest.raises(ConfigError):
            get_screen("holographic")


class TestCustomScreens:
    def test_minimal_config(self):
        screen = screen_from_config(
            {
                "name": "mine",
                "columns": [{"header": "IPC", "expr": "instructions / cycles"}],
            }
        )
        headers = [c.header for c in screen.columns]
        # Intrinsics wrap the derived column.
        assert headers == ["PID", "USER", "%CPU", "IPC", "COMMAND"]

    def test_bare_config(self):
        screen = screen_from_config(
            {
                "name": "bare",
                "bare": True,
                "columns": [{"header": "X", "expr": "cycles"}],
            }
        )
        assert [c.header for c in screen.columns] == ["X"]

    def test_width_and_decimals(self):
        screen = screen_from_config(
            {
                "name": "w",
                "columns": [
                    {"header": "D", "expr": "cycles", "width": 12, "decimals": 4}
                ],
            }
        )
        col = next(c for c in screen.columns if c.header == "D")
        assert col.width == 12
        assert col.decimals == 4

    def test_missing_name(self):
        with pytest.raises(ConfigError):
            screen_from_config({"columns": [{"header": "X", "expr": "cycles"}]})

    def test_empty_columns(self):
        with pytest.raises(ConfigError):
            screen_from_config({"name": "x", "columns": []})

    def test_malformed_column(self):
        with pytest.raises(ConfigError):
            screen_from_config({"name": "x", "columns": [{"header": "X"}]})

    def test_unknown_identifier_rejected_eagerly(self):
        with pytest.raises(ConfigError):
            screen_from_config(
                {"name": "x", "columns": [{"header": "X", "expr": "warp_core"}]}
            )

    def test_builtin_variables_allowed(self):
        screen = screen_from_config(
            {
                "name": "ghz",
                "columns": [{"header": "GHZ", "expr": "cycles / delta_t / 1e9"}],
            }
        )
        assert {e.name for e in screen.required_events()} == {"cycles"}
