"""Table 1: the floating-point micro-benchmark.

Paper (measured on Nehalem):

                 finite            infinite/NaN
           IPC   %FP assist    IPC     %FP assist
    x87    1.33  0             0.015   25 %
    SSE    1.33  0             1.33    0

and the quoted slowdown of 87x (= 1.33 / 0.015).
"""

import math

import pytest
from _harness import once, save_artifact

from repro import Options, SimHost, TipTop
from repro.core.screen import get_screen
from repro.sim import NEHALEM, SimMachine
from repro.sim.workloads.microbench import fp_microbench


def _measure_cell(isa: str, operands: str) -> tuple[float, float]:
    machine = SimMachine(NEHALEM, tick=0.5, seed=3)
    proc = machine.spawn(
        f"fp-{isa}-{operands}", fp_microbench(isa, operands, iterations=math.inf)
    )
    app = TipTop(SimHost(machine), Options(delay=2.0), get_screen("fpassist"))
    with app:
        recorder = app.run_collect(5)
    return recorder.mean(proc.pid, "IPC"), recorder.mean(proc.pid, "ASSIST")


def _run_table():
    table = {}
    for isa in ("x87", "sse"):
        for operands in ("finite", "inf", "nan"):
            table[(isa, operands)] = _measure_cell(isa, operands)
    return table


def test_table1_fp_assist(benchmark):
    table = once(benchmark, _run_table)

    lines = [
        "Table 1: measured behaviour of the FP micro-benchmark (Nehalem)",
        f"{'':6s} {'finite':>22s} {'infinite/NaN':>22s}",
        f"{'':6s} {'IPC':>10s} {'%assist':>10s} {'IPC':>10s} {'%assist':>10s}",
    ]
    for isa in ("x87", "sse"):
        fin = table[(isa, "finite")]
        inf = table[(isa, "inf")]
        lines.append(
            f"{isa:6s} {fin[0]:10.3f} {fin[1]:10.1f} {inf[0]:10.3f} {inf[1]:10.1f}"
        )
    slowdown = table[("x87", "finite")][0] / table[("x87", "inf")][0]
    lines.append(f"x87 slowdown on non-finite operands: {slowdown:.0f}x (paper: 87x)")
    save_artifact("table1_fp_assist", "\n".join(lines))

    # x87 row.
    assert table[("x87", "finite")][0] == pytest.approx(1.33, abs=0.02)
    assert table[("x87", "finite")][1] == pytest.approx(0.0, abs=0.01)
    assert table[("x87", "inf")][0] == pytest.approx(0.015, abs=0.003)
    assert table[("x87", "inf")][1] == pytest.approx(25.0, abs=0.5)
    # Inf and NaN behave identically (reported together in the paper).
    assert table[("x87", "nan")][0] == pytest.approx(
        table[("x87", "inf")][0], rel=0.02
    )
    # SSE row: unaffected by operand class.
    assert table[("sse", "finite")][0] == pytest.approx(1.33, abs=0.02)
    assert table[("sse", "inf")][0] == pytest.approx(1.33, abs=0.02)
    assert table[("sse", "inf")][1] == pytest.approx(0.0, abs=0.01)
    # The headline 87x.
    assert slowdown == pytest.approx(87.0, rel=0.08)
