"""Process view shared by the real and simulated /proc providers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol


@dataclass(frozen=True)
class ProcessInfo:
    """What tiptop needs to know about one task from /proc.

    Attributes:
        pid: process id.
        tids: thread ids (== (pid,) for single-threaded processes).
        uid: owner uid.
        user: owner login name.
        comm: command name (truncated to 15 chars by the kernel, as in
            /proc/<pid>/comm).
        state: one-letter state code (R/S/D/Z/X...).
        cpu_seconds: cumulative utime+stime in seconds.
        start_time: process start, in seconds since (machine) boot.
        processor: CPU the task last ran on.
    """

    pid: int
    tids: tuple[int, ...]
    uid: int
    user: str
    comm: str
    state: str
    cpu_seconds: float
    start_time: float
    processor: int


class TaskProvider(Protocol):
    """Provider interface over /proc (real or simulated)."""

    def list_processes(self) -> list[ProcessInfo]:
        """All visible live processes."""
        ...

    def process(self, pid: int) -> ProcessInfo:
        """One process.

        Raises:
            ProcfsError: when the pid does not exist (anymore).
        """
        ...

    def uptime(self) -> float:
        """Seconds since boot (wall or virtual)."""
        ...


def cpu_percent(
    previous: ProcessInfo | None,
    current: ProcessInfo,
    interval: float,
    uptime: float | None = None,
) -> float:
    """%CPU over a sampling interval, the way top computes it.

    With no previous sample the lifetime average is used instead
    (cpu_seconds over process age, which needs ``uptime``); without an
    uptime either, returns 0.0 for the first interval.
    """
    if previous is not None:
        if interval <= 0:
            return 0.0
        used = current.cpu_seconds - previous.cpu_seconds
        return max(0.0, 100.0 * used / interval)
    if uptime is None:
        return 0.0
    age = max(uptime - current.start_time, 1e-9)
    return max(0.0, 100.0 * current.cpu_seconds / age)
